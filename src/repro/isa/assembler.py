"""POWER assembler for the litmus front-end.

Generated from the same declarative encodings as the decoder (mirroring the
paper's assembly parsing code produced by the extraction tool, section 4),
plus the extended mnemonics the litmus corpus uses (li, mr, cmpw, beq,
lwsync, sldi, mflr, ...).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from .model import IsaModel
from .spec import REG_FIELDS, SIGNED_FIELDS, InstructionSpec


class AssemblerError(Exception):
    """Unparseable assembly or out-of-range operand."""


_CR_FLAG_BITS = {"lt": 0, "gt": 1, "eq": 2, "so": 3, "un": 3}


def _parse_register(text: str) -> int:
    text = text.strip().lower()
    if text.startswith("r"):
        text = text[1:]
    if not text.isdigit() or not 0 <= int(text) < 32:
        raise AssemblerError(f"bad register {text!r}")
    return int(text)


def _parse_cr_field(text: str) -> int:
    text = text.strip().lower()
    if text.startswith("cr"):
        text = text[2:]
    if not text.isdigit() or not 0 <= int(text) < 8:
        raise AssemblerError(f"bad CR field {text!r}")
    return int(text)


def _parse_int(text: str) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer {text!r}")


def _encode_signed(value: int, width: int, name: str) -> int:
    low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not low <= value <= high:
        raise AssemblerError(f"{name}={value} out of range [{low},{high}]")
    return value & ((1 << width) - 1)


def _encode_unsigned(value: int, width: int, name: str) -> int:
    if not 0 <= value < (1 << width):
        raise AssemblerError(f"{name}={value} does not fit {width} bits")
    return value


_MEM_OPERAND = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")


class Assembler:
    """Two-pass assembler over the instruction-spec table."""

    def __init__(self, model: IsaModel):
        self._model = model
        self._by_mnemonic: Dict[str, InstructionSpec] = {}
        for spec in model.table.all_specs():
            self._by_mnemonic[spec.mnemonic] = spec

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def assemble_instruction(
        self,
        text: str,
        address: int = 0,
        labels: Optional[Dict[str, int]] = None,
    ) -> int:
        """Assemble one instruction to its 32-bit opcode."""
        mnemonic, operands = self._split(text)
        mnemonic, operands = _expand_extended(mnemonic, operands)
        spec, flags = self._lookup(mnemonic)
        fields = self._encode_operands(
            spec, operands, address, labels or {}, flags
        )
        fields.update(flags)
        for field_def in spec.operand_fields():
            fields.setdefault(field_def.name, 0)
        return spec.encode(fields)

    def assemble_program(
        self, instructions: List[str], base: int
    ) -> Tuple[List[int], Dict[str, int]]:
        """Two-pass assembly of a label-bearing instruction list."""
        labels: Dict[str, int] = {}
        cleaned: List[Tuple[int, str]] = []
        address = base
        for line in instructions:
            line = line.strip()
            while ":" in line and _looks_like_label(line.split(":", 1)[0]):
                label, line = line.split(":", 1)
                labels[label.strip()] = address
                line = line.strip()
            if not line:
                continue
            cleaned.append((address, line))
            address += 4
        words = [
            self.assemble_instruction(text, addr, labels)
            for addr, text in cleaned
        ]
        return words, labels

    # ------------------------------------------------------------------

    def _split(self, text: str) -> Tuple[str, List[str]]:
        text = text.strip()
        if not text:
            raise AssemblerError("empty instruction")
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        if len(parts) == 1:
            return mnemonic, []
        operands = [op.strip() for op in parts[1].split(",")]
        return mnemonic, operands

    def _lookup(self, mnemonic: str) -> Tuple[InstructionSpec, Dict[str, int]]:
        flags: Dict[str, int] = {}
        if mnemonic in self._by_mnemonic:
            return self._by_mnemonic[mnemonic], flags
        # Branch link/absolute suffixes: bl, ba, bla, bcl, bclrl, bcctrl...
        stripped = mnemonic
        branch_flags: Dict[str, int] = {}
        if stripped.endswith("a") and stripped[:-1] in ("b", "bc", "bl", "bcl"):
            branch_flags["AA"] = 1
            stripped = stripped[:-1]
        if stripped.endswith("l") and stripped[:-1] in ("b", "bc", "bclr", "bcctr"):
            branch_flags["LK"] = 1
            stripped = stripped[:-1]
        if branch_flags and stripped in self._by_mnemonic:
            return self._by_mnemonic[stripped], branch_flags
        stripped = mnemonic
        if stripped.endswith("."):
            flags["Rc"] = 1
            stripped = stripped[:-1]
        if stripped in self._by_mnemonic:
            spec = self._by_mnemonic[stripped]
            if any(f.name == "Rc" for f in spec.operand_fields()):
                return spec, flags
        if stripped.endswith("o"):
            flags["OE"] = 1
            stripped = stripped[:-1]
            if stripped in self._by_mnemonic:
                return self._by_mnemonic[stripped], flags
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}")

    def _encode_operands(
        self,
        spec: InstructionSpec,
        operands: List[str],
        address: int,
        labels: Dict[str, int],
        flags: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        templates = [t for t in spec.syntax if t]
        if len(operands) != len(templates):
            raise AssemblerError(
                f"{spec.mnemonic}: expected {len(templates)} operands "
                f"({', '.join(templates)}), got {len(operands)}"
            )
        widths = {f.name: f.width for f in spec.operand_fields()}
        fields: Dict[str, int] = {}
        absolute = bool((flags or {}).get("AA"))
        for template, operand in zip(templates, operands):
            self._encode_one(
                spec, template, operand, address, labels, widths, fields,
                absolute,
            )
        return fields

    def _encode_one(
        self, spec, template, operand, address, labels, widths, fields,
        absolute=False,
    ) -> None:
        match = _MEM_OPERAND.match(template)
        if match:  # e.g. "D(RA)" / "DS(RA)"
            disp_field, base_field = match.group("disp"), match.group("base")
            opmatch = _MEM_OPERAND.match(operand)
            if not opmatch:
                raise AssemblerError(f"expected disp(base), got {operand!r}")
            disp = _parse_int(opmatch.group("disp") or "0")
            base = _parse_register(opmatch.group("base"))
            if disp_field == "DS":
                if disp % 4:
                    raise AssemblerError(f"DS displacement {disp} not a multiple of 4")
                fields["DS"] = _encode_signed(disp // 4, widths["DS"], "DS")
            else:
                fields[disp_field] = _encode_signed(
                    disp, widths[disp_field], disp_field
                )
            fields[base_field] = base
            return
        if template in REG_FIELDS:
            fields[template] = _parse_register(operand)
            return
        if template == "target":
            target = labels.get(operand)
            if target is None:
                target = _parse_int(operand)
            offset = target if absolute else target - address
            # Addresses wrap modulo 2^64; reduce the offset to the signed
            # 64-bit range so e.g. a backward branch rendered as a large
            # wrapped absolute address round-trips.
            offset &= (1 << 64) - 1
            if offset >> 63:
                offset -= 1 << 64
            if offset % 4:
                raise AssemblerError(f"misaligned branch target {operand!r}")
            field = "LI" if "LI" in widths else "BD"
            fields[field] = _encode_signed(offset // 4, widths[field], field)
            fields["AA"] = 1 if absolute else 0
            return
        if template == "spr":
            n = {"xer": 1, "lr": 8, "ctr": 9}.get(
                operand.lower(), None
            )
            if n is None:
                n = _parse_int(operand)
            fields["SPR"] = ((n & 0x1F) << 5) | (n >> 5)
            return
        if template == "fxm":
            if operand.lower().startswith("cr"):
                fields["FXM"] = 1 << (7 - _parse_cr_field(operand))
            else:
                fields["FXM"] = _encode_unsigned(_parse_int(operand), 8, "FXM")
            return
        if template == "sh6":
            sh = _parse_int(operand)
            if not 0 <= sh < 64:
                raise AssemblerError(f"shift {sh} out of range")
            fields["SHL"], fields["SHH"] = sh & 0x1F, sh >> 5
            return
        if template in ("mb6", "me6"):
            mb = _parse_int(operand)
            if not 0 <= mb < 64:
                raise AssemblerError(f"mask bound {mb} out of range")
            fields["MBE"] = ((mb & 0x1F) << 1) | (mb >> 5)
            return
        if template in ("BF", "BFA"):
            fields[template] = _parse_cr_field(operand)
            return
        width = widths.get(template)
        if width is None:
            raise AssemblerError(
                f"{spec.mnemonic}: unknown operand template {template!r}"
            )
        value = _parse_int(operand)
        if template in SIGNED_FIELDS:
            fields[template] = _encode_signed(value, width, template)
        else:
            fields[template] = _encode_unsigned(value, width, template)


def _looks_like_label(text: str) -> bool:
    text = text.strip()
    return bool(text) and bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", text))


# ----------------------------------------------------------------------
# Extended mnemonics
# ----------------------------------------------------------------------

_BRANCH_CONDITIONS = {
    "blt": (12, 0),
    "bge": (4, 0),
    "bgt": (12, 1),
    "ble": (4, 1),
    "beq": (12, 2),
    "bne": (4, 2),
    "bso": (12, 3),
    "bns": (4, 3),
}


def _expand_extended(
    mnemonic: str, operands: List[str]
) -> Tuple[str, List[str]]:
    """Rewrite an extended mnemonic to its underlying instruction."""
    if mnemonic == "li":
        return "addi", [operands[0], "0", operands[1]]
    if mnemonic == "lis":
        return "addis", [operands[0], "0", operands[1]]
    if mnemonic == "la":
        return "addi", [operands[0], _swap_disp(operands[1])[1], _swap_disp(operands[1])[0]]
    if mnemonic in ("mr", "mr."):
        base = "or" + ("." if mnemonic.endswith(".") else "")
        return base, [operands[0], operands[1], operands[1]]
    if mnemonic in ("not", "not."):
        base = "nor" + ("." if mnemonic.endswith(".") else "")
        return base, [operands[0], operands[1], operands[1]]
    if mnemonic == "nop":
        return "ori", ["0", "0", "0"]
    if mnemonic in ("sub", "sub.", "subo", "subo."):
        return "subf" + mnemonic[3:], [operands[0], operands[2], operands[1]]
    if mnemonic == "subi":
        return "addi", [operands[0], operands[1], str(-_parse_int(operands[2]))]
    if mnemonic in ("cmpw", "cmpd", "cmplw", "cmpld"):
        base = "cmpl" if "l" in mnemonic[3:] or mnemonic.startswith("cmpl") else "cmp"
        base = "cmp" if mnemonic in ("cmpw", "cmpd") else "cmpl"
        length = "1" if mnemonic.endswith("d") else "0"
        if len(operands) == 3:
            return base, [operands[0], length, operands[1], operands[2]]
        return base, ["cr0", length, operands[0], operands[1]]
    if mnemonic in ("cmpwi", "cmpdi", "cmplwi", "cmpldi"):
        base = "cmpi" if mnemonic in ("cmpwi", "cmpdi") else "cmpli"
        length = "1" if mnemonic[3] == "d" or mnemonic[4] == "d" else "0"
        length = "1" if ("di" in mnemonic) else "0"
        if len(operands) == 3:
            return base, [operands[0], length, operands[1], operands[2]]
        return base, ["cr0", length, operands[0], operands[1]]
    if mnemonic in _BRANCH_CONDITIONS:
        bo, flag = _BRANCH_CONDITIONS[mnemonic]
        if len(operands) == 2:
            bi = 4 * _parse_cr_field(operands[0]) + flag
            return "bc", [str(bo), str(bi), operands[1]]
        return "bc", [str(bo), str(flag), operands[0]]
    if mnemonic == "bdnz":
        return "bc", ["16", "0", operands[0]]
    if mnemonic == "bdz":
        return "bc", ["18", "0", operands[0]]
    if mnemonic == "blr":
        return "bclr", ["20", "0"]
    if mnemonic == "bctr":
        return "bcctr", ["20", "0"]
    if mnemonic == "beqlr":
        return "bclr", ["12", "2"]
    if mnemonic == "bnelr":
        return "bclr", ["4", "2"]
    if mnemonic == "mtlr":
        return "mtspr", ["lr", operands[0]]
    if mnemonic == "mflr":
        return "mfspr", [operands[0], "lr"]
    if mnemonic == "mtctr":
        return "mtspr", ["ctr", operands[0]]
    if mnemonic == "mfctr":
        return "mfspr", [operands[0], "ctr"]
    if mnemonic == "mtxer":
        return "mtspr", ["xer", operands[0]]
    if mnemonic == "mfxer":
        return "mfspr", [operands[0], "xer"]
    if mnemonic == "mtcr":
        return "mtcrf", ["0xff", operands[0]]
    if mnemonic in ("lwsync", "hwsync", "sync"):
        if operands:
            return "sync", operands
        return "sync", ["1" if mnemonic == "lwsync" else "0"]
    if mnemonic in ("slwi", "slwi."):
        n = _parse_int(operands[2])
        suffix = "." if mnemonic.endswith(".") else ""
        return "rlwinm" + suffix, [
            operands[0], operands[1], str(n), "0", str(31 - n),
        ]
    if mnemonic in ("srwi", "srwi."):
        n = _parse_int(operands[2])
        suffix = "." if mnemonic.endswith(".") else ""
        return "rlwinm" + suffix, [
            operands[0], operands[1], str((32 - n) % 32), str(n), "31",
        ]
    if mnemonic == "clrlwi":
        n = _parse_int(operands[2])
        return "rlwinm", [operands[0], operands[1], "0", str(n), "31"]
    if mnemonic in ("sldi", "sldi."):
        n = _parse_int(operands[2])
        suffix = "." if mnemonic.endswith(".") else ""
        return "rldicr" + suffix, [
            operands[0], operands[1], str(n), str(63 - n),
        ]
    if mnemonic in ("srdi", "srdi."):
        n = _parse_int(operands[2])
        suffix = "." if mnemonic.endswith(".") else ""
        return "rldicl" + suffix, [
            operands[0], operands[1], str((64 - n) % 64), str(n),
        ]
    if mnemonic == "clrldi":
        n = _parse_int(operands[2])
        return "rldicl", [operands[0], operands[1], "0", str(n)]
    if mnemonic == "crclr":
        return "crxor", [operands[0], operands[0], operands[0]]
    if mnemonic == "crset":
        return "creqv", [operands[0], operands[0], operands[0]]
    if mnemonic == "crmove":
        return "cror", [operands[0], operands[1], operands[1]]
    return mnemonic, operands


def _swap_disp(operand: str) -> Tuple[str, str]:
    match = _MEM_OPERAND.match(operand)
    if not match:
        raise AssemblerError(f"expected disp(base), got {operand!r}")
    return match.group("disp") or "0", match.group("base")
