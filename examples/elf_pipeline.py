#!/usr/bin/env python3
"""The ELF binary front-end, end to end (section 6 of the paper).

Assembles a small POWER program computing gcd(48, 36) with a loop and a
subroutine, packs it into a statically linked ELF64BE executable (our
writer substitutes for the paper's GCC toolchain), parses it back through
the reader front-end, loads segments and symbols, and executes it on the
model in sequential mode.

Run:  python examples/elf_pipeline.py
"""

from repro import Assembler, SequentialMachine, default_model
from repro.elf.loader import load_image, load_into_machine
from repro.elf.reader import read_elf
from repro.elf.writer import make_executable

TEXT = 0x1000_0000
DATA = 0x2000_0000

# gcd by repeated subtraction: r3 = gcd(r3, r4), result stored to `result`.
PROGRAM = [
    "li r3,48",
    "li r4,36",
    "loop:",
    "cmpw r3,r4",
    "beq done",
    "bgt bigger",
    "sub r4,r4,r3",       # r4 -= r3
    "b loop",
    "bigger:",
    "sub r3,r3,r4",       # r3 -= r4
    "b loop",
    "done:",
    "lis r9,0x2000",
    "stw r3,0(r9)",
]


def main() -> None:
    print(__doc__)
    model = default_model()
    assembler = Assembler(model)

    words, labels = assembler.assemble_program(PROGRAM, TEXT)
    print(f"assembled {len(words)} instructions; labels: "
          + ", ".join(f"{k}=0x{v:x}" for k, v in sorted(labels.items())))

    blob = make_executable(
        text_addr=TEXT,
        code_words=words,
        data_addr=DATA,
        data=bytes(8),
        symbols={
            "main": (TEXT, 4 * len(words), True),
            "result": (DATA, 4, False),
        },
    )
    print(f"wrote ELF64BE executable: {len(blob)} bytes")

    image = read_elf(blob)
    print(f"read back: entry=0x{image.entry:x}, "
          f"{len(image.segments)} segments, {len(image.symbols)} symbols")

    loaded = load_image(image)
    machine = SequentialMachine(model)
    load_into_machine(machine, loaded)
    final = machine.run(loaded.entry)

    result_addr = loaded.symbols["result"]
    result = machine.memory.read(result_addr, 4).to_int()
    print(f"halted at 0x{final:x} after {machine.instructions_retired} "
          f"instructions")
    print(f"[result] (symbol '{loaded.symbol_of(result_addr)}') = {result}")
    assert result == 12, "gcd(48, 36) should be 12"
    print("gcd(48, 36) = 12: the ELF pipeline works end to end.")


if __name__ == "__main__":
    main()
