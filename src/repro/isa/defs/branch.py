"""Branch facility instructions (Power ISA 2.06B chapter 2.4).

The pseudocode reads and writes the CIA/NIA pseudo-registers; the thread
model treats those specially so they create no dependencies (section 2.1.4).
Conditional logic is written so that the CR bit is only read when BO[0]=0
and CTR only touched when BO[2]=0 -- otherwise "branch always" forms would
acquire false register dependencies.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


_add(
    spec(
        "B",
        "b",
        "I",
        "branch",
        "18 LI:24 AA:1 LK:1",
        "target",
        execute_clause(
            "B",
            "LI, AA, LK",
            "if AA == 1 then NIA := EXTS(LI : 0b00) "
            "else NIA := CIA + EXTS(LI : 0b00);\n"
            "  if LK == 1 then LR := CIA + EXTZ(64, 0b100)",
        ),
        category="branch",
    )
)

#: Shared BO-field condition logic: ctr_ok and cond_ok as in the manual,
#: but with the CTR/CR accesses guarded so footprints stay minimal.
_BO_CONDITION = (
    "(bit[1]) ctr_ok := 0b1;\n"
    "  if BO[2] == 0b0 then {{\n"
    "    (bit[64]) ctr := CTR - EXTZ(64, 0b1);\n"
    "    CTR := ctr;\n"
    "    ctr_ok := if (ctr == EXTZ(64, 0b0)) == BO[3] then 0b1 else 0b0\n"
    "  }};\n"
    "  (bit[1]) cond_ok := 0b1;\n"
    "  if BO[0] == 0b0 then "
    "cond_ok := if CR[to_num(BI)+32] == BO[1] then 0b1 else 0b0"
)

_add(
    spec(
        "Bc",
        "bc",
        "B",
        "branch",
        "16 BO:5 BI:5 BD:14 AA:1 LK:1",
        "BO, BI, target",
        execute_clause(
            "Bc",
            "BO, BI, BD, AA, LK",
            _BO_CONDITION.format()
            + ";\n"
            "  if (ctr_ok & cond_ok) == 0b1 then {\n"
            "    if AA == 1 then NIA := EXTS(BD : 0b00) "
            "else NIA := CIA + EXTS(BD : 0b00)\n"
            "  };\n"
            "  if LK == 1 then LR := CIA + EXTZ(64, 0b100)",
        ),
        category="branch",
    )
)

_add(
    spec(
        "Bclr",
        "bclr",
        "XL",
        "branch",
        "19 BO:5 BI:5 0:3 BH:2 16:10 LK:1",
        "BO, BI",
        execute_clause(
            "Bclr",
            "BO, BI, BH, LK",
            _BO_CONDITION.format()
            + ";\n"
            "  if (ctr_ok & cond_ok) == 0b1 then NIA := LR[0..61] : 0b00;\n"
            "  if LK == 1 then LR := CIA + EXTZ(64, 0b100)",
        ),
        category="branch",
    )
)

_add(
    spec(
        "Bcctr",
        "bcctr",
        "XL",
        "branch",
        "19 BO:5 BI:5 0:3 BH:2 528:10 LK:1",
        "BO, BI",
        execute_clause(
            "Bcctr",
            "BO, BI, BH, LK",
            "(bit[1]) cond_ok := 0b1;\n"
            "  if BO[0] == 0b0 then "
            "cond_ok := if CR[to_num(BI)+32] == BO[1] then 0b1 else 0b0;\n"
            "  if cond_ok == 0b1 then NIA := CTR[0..61] : 0b00;\n"
            "  if LK == 1 then LR := CIA + EXTZ(64, 0b100)",
        ),
        # Decrement-and-branch forms are invalid for bcctr.
        invalid_when="(BO & 0b00100) == 0",
        category="branch",
    )
)
