"""Differential execution: the Sail model vs the golden emulator.

Runs one generated test on both implementations from identical initial
state and compares every architected register, the next-instruction address,
and all touched memory, *up to undef*: wherever the model's value has undef
bits, any hardware (golden) value is acceptable -- exactly the comparison
discipline of section 7 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..golden.emulator import GoldenMachine
from ..golden import emulator as golden
from ..isa.model import IsaModel
from ..isa.sequential import SequentialMachine
from ..sail.values import Bits
from .sequential import MachineSetup, SequentialTest


@dataclass
class Mismatch:
    location: str
    model_value: str
    golden_value: str

    def __str__(self) -> str:
        return f"{self.location}: model={self.model_value} golden={self.golden_value}"


@dataclass
class ComparisonResult:
    test: SequentialTest
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches


def _setup_model_machine(
    model: IsaModel, setup: MachineSetup
) -> SequentialMachine:
    machine = SequentialMachine(model)
    for i, value in enumerate(setup.gprs):
        machine.set_gpr(i, value)
    machine.set_reg("CR", setup.cr)
    xer = (setup.so << 31) | (setup.ov << 30) | (setup.ca << 29)
    machine.set_reg("XER", xer)
    machine.set_reg("LR", setup.lr)
    machine.set_reg("CTR", setup.ctr)
    machine.cia = setup.cia
    for addr, byte in setup.memory.items():
        machine.memory.load_bytes(addr, bytes([byte]))
    return machine


def _setup_golden_machine(setup: MachineSetup) -> GoldenMachine:
    machine = GoldenMachine()
    machine.gpr = list(setup.gprs)
    machine.cr = setup.cr
    machine.so, machine.ov, machine.ca = setup.so, setup.ov, setup.ca
    machine.lr, machine.ctr = setup.lr, setup.ctr
    machine.cia = setup.cia
    machine.memory = dict(setup.memory)
    return machine


def _check(
    result: ComparisonResult, location: str, model_value: Bits, golden_value: int
) -> None:
    concrete = Bits.from_int(golden_value, model_value.width)
    if not model_value.matches_up_to_undef(concrete):
        result.mismatches.append(
            Mismatch(location, repr(model_value), hex(golden_value))
        )


def run_differential(model: IsaModel, test: SequentialTest) -> ComparisonResult:
    """Execute one test on both machines and compare final state."""
    result = ComparisonResult(test)
    instruction = test.decode(model)

    model_machine = _setup_model_machine(model, test.setup)
    golden_machine = _setup_golden_machine(test.setup)

    model_nia = model_machine.execute(instruction)
    golden_nia = golden.execute(golden_machine, instruction)

    if model_nia != golden_nia:
        result.mismatches.append(
            Mismatch("NIA", hex(model_nia), hex(golden_nia))
        )

    for i in range(32):
        _check(result, f"GPR{i}", model_machine.gpr(i), golden_machine.gpr[i])
    _check(result, "CR", model_machine.reg("CR"), golden_machine.cr)
    _check(result, "XER", model_machine.reg("XER"), golden_machine.xer)
    _check(result, "LR", model_machine.reg("LR"), golden_machine.lr)
    _check(result, "CTR", model_machine.reg("CTR"), golden_machine.ctr)

    touched = set(model_machine.memory.snapshot()) | set(golden_machine.memory)
    for addr in sorted(touched):
        model_byte = model_machine.memory.read(addr, 1)
        _check(
            result,
            f"mem[0x{addr:x}]",
            model_byte,
            golden_machine.memory.get(addr, 0),
        )
    return result


@dataclass
class SuiteReport:
    """Aggregate results over a generated suite (the paper's 6984-test run)."""

    total: int = 0
    passed: int = 0
    failures: List[ComparisonResult] = field(default_factory=list)
    per_instruction: Dict[str, int] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total


def run_suite(model: IsaModel, tests) -> SuiteReport:
    report = SuiteReport()
    for test in tests:
        outcome = run_differential(model, test)
        report.total += 1
        report.per_instruction[test.spec_name] = (
            report.per_instruction.get(test.spec_name, 0) + 1
        )
        if outcome.passed:
            report.passed += 1
        else:
            report.failures.append(outcome)
    return report
