"""The operational concurrency model (sections 2 and 5 of the paper)."""

from .events import BarrierEvent, BarrierId, Write, WriteId
from .exhaustive import (
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    Witness,
    explore,
    find_witness,
    run_one,
)
from .keys import CachedKey
from .parallel import (
    CorpusReport,
    CorpusTestResult,
    default_job_count,
    explore_corpus,
    plan_worker_budget,
)
from .params import DEFAULT_PARAMS, ModelParams
from .search import (
    BoundedIterative,
    SearchStrategy,
    SequentialDFS,
    ShardedParallel,
    make_strategy,
    resolve_strategy,
)
from .storage import CoherenceViolation, StorageSubsystem
from .system import SystemState, Transition
from .thread import InstructionInstance, ModelError, ThreadState

__all__ = [
    "BarrierEvent",
    "BarrierId",
    "BoundedIterative",
    "CachedKey",
    "CoherenceViolation",
    "CorpusReport",
    "CorpusTestResult",
    "DEFAULT_PARAMS",
    "ExplorationLimit",
    "ExplorationResult",
    "ExplorationStats",
    "InstructionInstance",
    "ModelError",
    "ModelParams",
    "SearchStrategy",
    "SequentialDFS",
    "ShardedParallel",
    "StorageSubsystem",
    "SystemState",
    "ThreadState",
    "Transition",
    "Witness",
    "Write",
    "WriteId",
    "default_job_count",
    "explore",
    "explore_corpus",
    "find_witness",
    "make_strategy",
    "plan_worker_budget",
    "resolve_strategy",
    "run_one",
]
