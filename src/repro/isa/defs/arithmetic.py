"""Fixed-point arithmetic instructions (Power ISA 2.06B chapter 3.3.9).

Each XO-form entry carries OE and Rc operand bits, so the four documented
variants (e.g. add / add. / addo / addo.) share one underlying instruction,
matching the paper's counting convention (section 4.1).
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import CR0_RECORD, OV_ADD, execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


def _record(result: str) -> str:
    return CR0_RECORD.format(r=result)


def _overflow(a: str, b: str, r: str) -> str:
    return OV_ADD.format(a=a, b=b, r=r)


# ----------------------------------------------------------------------
# D-form immediate arithmetic
# ----------------------------------------------------------------------

_add(
    spec(
        "Addi",
        "addi",
        "D",
        "fixed-point",
        "14 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause(
            "Addi",
            "RT, RA, SI",
            "if RA == 0 then GPR[RT] := EXTS(SI) else GPR[RT] := GPR[RA] + EXTS(SI)",
        ),
        category="arithmetic",
    )
)

_add(
    spec(
        "Addis",
        "addis",
        "D",
        "fixed-point",
        "15 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause(
            "Addis",
            "RT, RA, SI",
            "if RA == 0 then GPR[RT] := EXTS(SI : 0x0000) "
            "else GPR[RT] := GPR[RA] + EXTS(SI : 0x0000)",
        ),
        category="arithmetic",
    )
)

_add(
    spec(
        "Addic",
        "addic",
        "D",
        "fixed-point",
        "12 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause(
            "Addic",
            "RT, RA, SI",
            "(bit[65]) sum := EXTZ(65, GPR[RA]) + EXTZ(65, EXTS(SI));\n"
            "  GPR[RT] := sum[1..64];\n"
            "  XER.CA := sum[0]",
        ),
        category="arithmetic",
    )
)

_add(
    spec(
        "AddicRecord",
        "addic.",
        "D",
        "fixed-point",
        "13 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause(
            "AddicRecord",
            "RT, RA, SI",
            "(bit[65]) sum := EXTZ(65, GPR[RA]) + EXTZ(65, EXTS(SI));\n"
            "  (bit[64]) r := sum[1..64];\n"
            "  GPR[RT] := r;\n"
            "  XER.CA := sum[0];\n"
            "  (bit[1]) eq0 := r == EXTZ(64, 0b0);\n"
            "  CR[32..35] := (r[0]) : (~r[0] & ~eq0) : eq0 : XER.SO",
        ),
        category="arithmetic",
    )
)

_add(
    spec(
        "Subfic",
        "subfic",
        "D",
        "fixed-point",
        "8 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause(
            "Subfic",
            "RT, RA, SI",
            "(bit[65]) sum := EXTZ(65, ~GPR[RA]) + EXTZ(65, EXTS(SI)) + EXTZ(65, 0b1);\n"
            "  GPR[RT] := sum[1..64];\n"
            "  XER.CA := sum[0]",
        ),
        category="arithmetic",
    )
)

_add(
    spec(
        "Mulli",
        "mulli",
        "D",
        "fixed-point",
        "7 RT:5 RA:5 SI:16",
        "RT, RA, SI",
        execute_clause("Mulli", "RT, RA, SI", "GPR[RT] := GPR[RA] * EXTS(SI)"),
        category="arithmetic",
    )
)

# ----------------------------------------------------------------------
# XO-form add/subtract (with OE and Rc variant bits)
# ----------------------------------------------------------------------


def _xo(name, mnemonic, xo, body, syntax="RT, RA, RB", fields="RT, RA, RB",
        layout=None, invalid_when=None):
    _add(
        spec(
            name,
            mnemonic,
            "XO",
            "fixed-point",
            layout or f"31 RT:5 RA:5 RB:5 OE:1 {xo}:9 Rc:1",
            syntax,
            execute_clause(name, fields, body),
            invalid_when=invalid_when,
            category="arithmetic",
        )
    )


_xo(
    "Add",
    "add",
    266,
    "(bit[64]) a := GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[64]) r := a + b;\n"
    "  GPR[RT] := r;\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

# subf of a register from itself is exactly zero even over undef bits
# (same-register reads see one concrete value); like xor, this keeps the
# dependency idiom "subf rX,rY,rY" usable for artificial dependencies.
_xo(
    "Subf",
    "subf",
    40,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[64]) r := a + b + EXTZ(64, 0b1);\n"
    "  if RA == RB then r := EXTZ(64, 0b0) & b;\n"
    "  GPR[RT] := r;\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

_xo(
    "Addc",
    "addc",
    10,
    "(bit[64]) a := GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

_xo(
    "Subfc",
    "subfc",
    8,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b) + EXTZ(65, 0b1);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

_xo(
    "Adde",
    "adde",
    138,
    "(bit[64]) a := GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

_xo(
    "Subfe",
    "subfe",
    136,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := GPR[RB];\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
)

_xo(
    "Addme",
    "addme",
    234,
    "(bit[64]) a := GPR[RA];\n"
    "  (bit[64]) b := ~EXTZ(64, 0b0);\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
    syntax="RT, RA",
    fields="RT, RA",
    layout="31 RT:5 RA:5 0:5 OE:1 234:9 Rc:1",
)

_xo(
    "Subfme",
    "subfme",
    232,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := ~EXTZ(64, 0b0);\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, b) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
    syntax="RT, RA",
    fields="RT, RA",
    layout="31 RT:5 RA:5 0:5 OE:1 232:9 Rc:1",
)

_xo(
    "Addze",
    "addze",
    202,
    "(bit[64]) a := GPR[RA];\n"
    "  (bit[64]) b := EXTZ(64, 0b0);\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
    syntax="RT, RA",
    fields="RT, RA",
    layout="31 RT:5 RA:5 0:5 OE:1 202:9 Rc:1",
)

_xo(
    "Subfze",
    "subfze",
    200,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := EXTZ(64, 0b0);\n"
    "  (bit[65]) sum := EXTZ(65, a) + EXTZ(65, XER.CA);\n"
    "  (bit[64]) r := sum[1..64];\n"
    "  GPR[RT] := r;\n"
    "  XER.CA := sum[0];\n"
    f"  {_overflow('a', 'b', 'r')};\n"
    f"  {_record('r')}",
    syntax="RT, RA",
    fields="RT, RA",
    layout="31 RT:5 RA:5 0:5 OE:1 200:9 Rc:1",
)

_xo(
    "Neg",
    "neg",
    104,
    "(bit[64]) a := ~GPR[RA];\n"
    "  (bit[64]) b := EXTZ(64, 0b0);\n"
    "  (bit[64]) r := a + EXTZ(64, 0b1);\n"
    "  GPR[RT] := r;\n"
    "  if OE == 1 then { (bit[1]) ov := (a[0] == 0b0) & (r[0] != a[0]); "
    "XER.OV := ov; XER.SO := XER.SO | ov };\n"
    f"  {_record('r')}",
    syntax="RT, RA",
    fields="RT, RA",
    layout="31 RT:5 RA:5 0:5 OE:1 104:9 Rc:1",
)

# ----------------------------------------------------------------------
# Multiply
# ----------------------------------------------------------------------

_xo(
    "Mullw",
    "mullw",
    235,
    "(bit[64]) prod := MULTIPLY_S(64, (GPR[RA])[32..63], (GPR[RB])[32..63]);\n"
    "  GPR[RT] := prod;\n"
    "  if OE == 1 then { (bit[1]) ov := ~(prod == EXTS(64, prod[32..63])); "
    "XER.OV := ov; XER.SO := XER.SO | ov };\n"
    f"  {_record('prod')}",
)

_xo(
    "Mulld",
    "mulld",
    233,
    "(bit[128]) prod := MULTIPLY_S(128, GPR[RA], GPR[RB]);\n"
    "  (bit[64]) r := prod[64..127];\n"
    "  GPR[RT] := r;\n"
    "  if OE == 1 then { (bit[1]) ov := ~(prod == EXTS(128, r)); "
    "XER.OV := ov; XER.SO := XER.SO | ov };\n"
    f"  {_record('r')}",
)

# mulhw-family results leave the high 32 bits of RT undefined (the paper's
# section 2.1.7 example of undefined values).
_MULH = [
    ("Mulhw", "mulhw", 75, True, 4),
    ("Mulhwu", "mulhwu", 11, False, 4),
    ("Mulhd", "mulhd", 73, True, 8),
    ("Mulhdu", "mulhdu", 9, False, 8),
]

for name, mnemonic, xo, signed, size in _MULH:
    mult = "MULTIPLY_S" if signed else "MULTIPLY_U"
    if size == 4:
        body = (
            f"(bit[64]) prod := {mult}(64, (GPR[RA])[32..63], (GPR[RB])[32..63]);\n"
            "  (bit[64]) r := UNDEFINED(32) : prod[0..31];\n"
            "  GPR[RT] := r;\n"
            "  if Rc == 1 then CR[32..35] := UNDEFINED(3) : XER.SO"
        )
    else:
        body = (
            f"(bit[128]) prod := {mult}(128, GPR[RA], GPR[RB]);\n"
            "  (bit[64]) r := prod[0..63];\n"
            "  GPR[RT] := r;\n"
            f"  {_record('r')}"
        )
    _add(
        spec(
            name,
            mnemonic,
            "XO",
            "fixed-point",
            f"31 RT:5 RA:5 RB:5 0:1 {xo}:9 Rc:1",
            "RT, RA, RB",
            execute_clause(name, "RT, RA, RB", body),
            category="arithmetic",
        )
    )

# ----------------------------------------------------------------------
# Divide (quotient undefined on divide-by-zero / overflow; OV reports it)
# ----------------------------------------------------------------------

_DIVW_OV = (
    "if OE == 1 then { "
    "(bit[1]) ov := (b == 0x00000000) "
    "| ((a == 0x80000000) & (b == 0xFFFFFFFF)); "
    "XER.OV := ov; XER.SO := XER.SO | ov }"
)

_DIVD_OV = (
    "if OE == 1 then { "
    "(bit[1]) ov := (b == EXTZ(64, 0b0)) "
    "| ((a == 0x8000000000000000) & (b == 0xFFFFFFFFFFFFFFFF)); "
    "XER.OV := ov; XER.SO := XER.SO | ov }"
)

_DIVW_OVU = (
    "if OE == 1 then { "
    "(bit[1]) ov := b == 0x00000000; "
    "XER.OV := ov; XER.SO := XER.SO | ov }"
)

_DIVD_OVU = (
    "if OE == 1 then { "
    "(bit[1]) ov := b == EXTZ(64, 0b0); "
    "XER.OV := ov; XER.SO := XER.SO | ov }"
)

_DIVS = [
    ("Divw", "divw", 491, "DIVS", 4, _DIVW_OV),
    ("Divwu", "divwu", 459, "DIVU", 4, _DIVW_OVU),
    ("Divd", "divd", 489, "DIVS", 8, _DIVD_OV),
    ("Divdu", "divdu", 457, "DIVU", 8, _DIVD_OVU),
]

for name, mnemonic, xo, op, size, ov in _DIVS:
    # Operands are read once into locals before GPR[RT] is written: the
    # overflow check must not re-read a register the instruction may just
    # have overwritten (RT == RA/RB forms; the section 2.1.3 rewrite).
    if size == 4:
        body = (
            "(bit[32]) a := (GPR[RA])[32..63];\n"
            "  (bit[32]) b := (GPR[RB])[32..63];\n"
            f"  (bit[32]) q := {op}(a, b);\n"
            "  (bit[64]) r := UNDEFINED(32) : q;\n"
            "  GPR[RT] := r;\n"
            f"  {ov};\n"
            "  if Rc == 1 then CR[32..35] := UNDEFINED(3) : XER.SO"
        )
    else:
        body = (
            "(bit[64]) a := GPR[RA];\n"
            "  (bit[64]) b := GPR[RB];\n"
            f"  (bit[64]) r := {op}(a, b);\n"
            "  GPR[RT] := r;\n"
            f"  {ov};\n"
            "  if Rc == 1 then CR[32..35] := UNDEFINED(3) : XER.SO"
        )
    _add(
        spec(
            name,
            mnemonic,
            "XO",
            "fixed-point",
            f"31 RT:5 RA:5 RB:5 OE:1 {xo}:9 Rc:1",
            "RT, RA, RB",
            execute_clause(name, "RT, RA, RB", body),
            category="arithmetic",
        )
    )
