"""E10 -- the ELF binary front-end pipeline (paper section 6/7).

The paper's sequential tests are standard ELF binaries produced with GCC,
so every run exercises the ELF front-end: parse headers, validate static
linkage, load segments into code/data memory, and extract symbols for the
pretty-printer.  This bench runs the full write -> read -> load -> execute
pipeline on generated programs.
"""

import random

from conftest import print_table

from repro.elf.loader import load_image, load_into_machine
from repro.elf.reader import read_elf
from repro.elf.writer import make_executable
from repro.isa.assembler import Assembler
from repro.isa.sequential import SequentialMachine

PROGRAMS = 25
TEXT_BASE = 0x1000_0000
DATA_BASE = 0x2000_0000


def _random_program(rng):
    """A short register-arithmetic program with a known final r31."""
    lines = []
    accumulator = 0
    lines.append("li r31,0")
    for _ in range(rng.randrange(4, 12)):
        delta = rng.randrange(-100, 100)
        lines.append(f"addi r31,r31,{delta}")
        accumulator += delta
    return lines, accumulator % (1 << 64)


def test_e10_elf_pipeline(model, benchmark):
    assembler = Assembler(model)
    rng = random.Random(48)
    programs = [_random_program(rng) for _ in range(PROGRAMS)]

    def pipeline():
        checked = 0
        for lines, expected in programs:
            words, _ = assembler.assemble_program(lines, TEXT_BASE)
            blob = make_executable(
                text_addr=TEXT_BASE,
                code_words=words,
                data_addr=DATA_BASE,
                data=bytes(32),
                symbols={
                    "main": (TEXT_BASE, 4 * len(words), True),
                    "scratch": (DATA_BASE, 32, False),
                },
            )
            image = read_elf(blob)
            loaded = load_image(image)
            machine = SequentialMachine(model)
            load_into_machine(machine, loaded)
            machine.run(loaded.entry)
            assert machine.gpr(31).to_int() == expected
            assert loaded.symbols["scratch"] == DATA_BASE
            checked += 1
        return checked

    checked = benchmark(pipeline)

    print_table(
        "E10: ELF write -> read -> load -> execute pipeline",
        ["metric", "value"],
        [
            ("programs", PROGRAMS),
            ("pipeline runs verified", checked),
            ("front-end checks", "magic, class, endianness, machine, ET_EXEC"),
        ],
    )
    assert checked == PROGRAMS
