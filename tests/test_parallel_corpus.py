"""The multiprocessing corpus runner must agree with the sequential path.

``run_corpus(..., jobs=2)`` shards tests across worker processes and
merges their ``ExplorationStats``; on the same corpus slice the merged
counters, per-test verdicts and outcome sets must be identical to a
sequential (``jobs=1``) run.  This exercises the pool + merge path even
on a single-CPU container.
"""

from repro.litmus.library import by_name
from repro.litmus.runner import run_corpus

SLICE = ["MP", "MP+syncs", "SB", "LB+datas"]


def _entries():
    return [by_name(name) for name in SLICE]


def test_jobs2_matches_sequential_run():
    sequential = run_corpus(_entries(), jobs=1)
    parallel = run_corpus(_entries(), jobs=2)

    assert sequential.jobs == 1
    assert parallel.jobs == 2
    assert parallel.wall_seconds > 0

    by_name_seq = {result.name: result for result in sequential.results}
    by_name_par = {result.name: result for result in parallel.results}
    assert set(by_name_seq) == set(by_name_par) == set(SLICE)

    for name in SLICE:
        seq, par = by_name_seq[name], by_name_par[name]
        assert par.status == seq.status, name
        assert par.witnessed == seq.witnessed, name
        assert par.outcomes == seq.outcomes, name
        assert par.stats.states_visited == seq.stats.states_visited, name
        assert par.stats.transitions_taken == seq.stats.transitions_taken, name
        assert par.stats.final_states == seq.stats.final_states, name
        assert par.stats.deadlocks == seq.stats.deadlocks, name

    merged_seq = sequential.merged_stats()
    merged_par = parallel.merged_stats()
    assert merged_par.states_visited == merged_seq.states_visited
    assert merged_par.transitions_taken == merged_seq.transitions_taken
    assert merged_par.final_states == merged_seq.final_states
    assert merged_par.deadlocks == merged_seq.deadlocks
    assert merged_par.max_frontier == merged_seq.max_frontier
    assert merged_par.seconds > 0


def test_generated_suite_through_run_corpus():
    """Generated tests are first-class corpus entries (name/source pairs)."""
    from repro.litmus import diy

    tests = diy.generate(1, 4, max_threads=2)
    report = run_corpus(
        [(test.name, test.source) for test in tests],
        jobs=2,
        max_states=150_000,
    )
    assert len(report.results) == 4
    assert {result.name for result in report.results} == {
        test.name for test in tests
    }
    for result in report.results:
        assert result.status in ("Allowed", "Forbidden", "StateLimit")
