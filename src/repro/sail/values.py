"""Lifted bitvector values for the Sail interpreter.

The paper (section 2.1.7) adopts interpretation (c) for undefined values:
each bit of a register or memory value is ``0``, ``1``, or ``undef``.  On top
of that, the exhaustive footprint analysis (section 2.2) feeds a
distinguished ``unknown`` value into the continuations of pending reads, so a
bit can take one of four values:

    ``0`` / ``1``   -- concrete
    ``undef``       -- architecturally undefined (observable as any value)
    ``unknown``     -- analysis-only: "not yet resolved by the model"

``Bits`` is immutable and hashable so that interpreter states containing
values can be snapshotted, compared, and memoised during exhaustive
exploration.

Indexing convention: POWER numbers bits from 0 at the most-significant end,
increasing towards the least-significant bit.  ``Bits`` uses that convention
for all indexed operations (``bit(i)``, ``slice(a, b)``); internally the
payload is stored as plain integers with LSB-0 positions.
"""

from __future__ import annotations

from dataclasses import dataclass


class SailValueError(Exception):
    """An operation was applied to values it cannot handle."""


class UndefUsedError(SailValueError):
    """An ``undef`` bit reached a position where the model forbids it.

    The paper allows undef bits in register and memory values but not in
    addresses or instruction fields (section 2.1.7).
    """


class UnknownUsedError(SailValueError):
    """An ``unknown`` bit escaped the exhaustive analysis into concrete code."""


@dataclass(frozen=True)
class Bits:
    """An immutable lifted bitvector.

    Attributes:
        width: number of bits (may be 0 for the empty vector).
        ones: integer whose set bits (LSB-0 positions) are concrete ``1``.
        undefs: integer marking ``undef`` bits.
        unknowns: integer marking ``unknown`` bits.

    A bit not set in any mask is concrete ``0``.  The three masks are
    disjoint and lie within ``(1 << width) - 1``.
    """

    width: int
    ones: int = 0
    undefs: int = 0
    unknowns: int = 0

    def __post_init__(self) -> None:
        limit = (1 << self.width) - 1 if self.width else 0
        if (self.ones | self.undefs | self.unknowns) & ~limit:
            raise SailValueError("bit mask outside vector width")
        if (self.ones & self.undefs) or (self.ones & self.unknowns) or (
            self.undefs & self.unknowns
        ):
            raise SailValueError("overlapping bit classification masks")

    # Hand-written hash/eq (the dataclass machinery leaves explicitly
    # defined ones alone): values are hashed millions of times by the
    # exploration memo tables, so the hash -- identical in value to the
    # generated field-tuple hash -- is computed once per object.
    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.width, self.ones, self.undefs, self.unknowns))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other):
        if other.__class__ is Bits:
            return (
                self.width == other.width
                and self.ones == other.ones
                and self.undefs == other.undefs
                and self.unknowns == other.unknowns
            )
        return NotImplemented

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int) -> "Bits":
        """Build a fully concrete vector from an integer (two's complement)."""
        return Bits(width, value & ((1 << width) - 1) if width else 0)

    @staticmethod
    def zeros(width: int) -> "Bits":
        return Bits(width)

    @staticmethod
    def all_ones(width: int) -> "Bits":
        return Bits(width, (1 << width) - 1 if width else 0)

    @staticmethod
    def undef(width: int) -> "Bits":
        return Bits(width, 0, (1 << width) - 1 if width else 0, 0)

    @staticmethod
    def unknown(width: int) -> "Bits":
        return Bits(width, 0, 0, (1 << width) - 1 if width else 0)

    @staticmethod
    def from_string(text: str) -> "Bits":
        """Parse a bit string such as ``0101`` or ``01uU`` (u=undef, x/U=unknown)."""
        ones = undefs = unknowns = 0
        width = len(text)
        for i, ch in enumerate(text):
            pos = width - 1 - i
            if ch == "1":
                ones |= 1 << pos
            elif ch == "0":
                pass
            elif ch in "uU" and ch == "u":
                undefs |= 1 << pos
            elif ch in "xXU":
                unknowns |= 1 << pos
            else:
                raise SailValueError(f"bad bit character {ch!r}")
        return Bits(width, ones, undefs, unknowns)

    @staticmethod
    def from_bytes(data: bytes) -> "Bits":
        """Big-endian bytes to a concrete vector (8 bits per byte)."""
        return Bits.from_int(int.from_bytes(data, "big"), 8 * len(data))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def is_known(self) -> bool:
        """True when every bit is a concrete 0 or 1."""
        return not (self.undefs or self.unknowns)

    @property
    def has_undef(self) -> bool:
        return bool(self.undefs)

    @property
    def has_unknown(self) -> bool:
        return bool(self.unknowns)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_int(self) -> int:
        """Unsigned integer value; requires every bit concrete."""
        if not self.is_known:
            if self.unknowns:
                raise UnknownUsedError("unknown bits in integer conversion")
            raise UndefUsedError("undef bits in integer conversion")
        return self.ones

    def to_signed(self) -> int:
        value = self.to_int()
        if self.width and value >> (self.width - 1):
            value -= 1 << self.width
        return value

    def to_bytes(self) -> bytes:
        """Big-endian bytes; requires concrete bits and a multiple-of-8 width."""
        if self.width % 8:
            raise SailValueError("width not a multiple of 8")
        return self.to_int().to_bytes(self.width // 8, "big")

    def to_bitstring(self) -> str:
        chars = []
        for i in range(self.width):
            pos = self.width - 1 - i
            if self.ones >> pos & 1:
                chars.append("1")
            elif self.undefs >> pos & 1:
                chars.append("u")
            elif self.unknowns >> pos & 1:
                chars.append("x")
            else:
                chars.append("0")
        return "".join(chars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_known and self.width % 4 == 0 and self.width:
            return f"0x{self.to_int():0{self.width // 4}x}"
        return f"0b{self.to_bitstring()}"

    # ------------------------------------------------------------------
    # Structural operations (POWER MSB-0 indexing)
    # ------------------------------------------------------------------

    def _pos(self, index: int) -> int:
        if not 0 <= index < self.width:
            raise SailValueError(
                f"bit index {index} out of range for bit[{self.width}]"
            )
        return self.width - 1 - index

    def bit(self, index: int) -> "Bits":
        """Single bit at POWER index ``index`` as a ``bit[1]``."""
        pos = self._pos(index)
        return Bits(
            1,
            self.ones >> pos & 1,
            self.undefs >> pos & 1,
            self.unknowns >> pos & 1,
        )

    def slice(self, lo_index: int, hi_index: int) -> "Bits":
        """Bits ``lo_index .. hi_index`` inclusive (POWER order, lo is MSB side)."""
        if lo_index > hi_index:
            raise SailValueError(f"bad slice [{lo_index}..{hi_index}]")
        self._pos(lo_index)
        self._pos(hi_index)
        new_width = hi_index - lo_index + 1
        shift = self.width - 1 - hi_index
        mask = (1 << new_width) - 1
        return Bits(
            new_width,
            self.ones >> shift & mask,
            self.undefs >> shift & mask,
            self.unknowns >> shift & mask,
        )

    def update_slice(self, lo_index: int, hi_index: int, value: "Bits") -> "Bits":
        """Copy with bits ``lo_index .. hi_index`` replaced by ``value``."""
        new_width = hi_index - lo_index + 1
        if value.width != new_width:
            raise SailValueError(
                f"update width {value.width} != slice width {new_width}"
            )
        self._pos(lo_index)
        self._pos(hi_index)
        shift = self.width - 1 - hi_index
        mask = ((1 << new_width) - 1) << shift
        return Bits(
            self.width,
            (self.ones & ~mask) | (value.ones << shift),
            (self.undefs & ~mask) | (value.undefs << shift),
            (self.unknowns & ~mask) | (value.unknowns << shift),
        )

    def concat(self, other: "Bits") -> "Bits":
        """``self : other`` with self at the most-significant end."""
        w = other.width
        return Bits(
            self.width + w,
            self.ones << w | other.ones,
            self.undefs << w | other.undefs,
            self.unknowns << w | other.unknowns,
        )

    def replicate(self, count: int) -> "Bits":
        out = Bits(0)
        for _ in range(count):
            out = out.concat(self)
        return out

    def extz(self, new_width: int) -> "Bits":
        """Zero-extend (or truncate from the MSB side) to ``new_width``."""
        if new_width < self.width:
            return self.slice(self.width - new_width, self.width - 1)
        return Bits(new_width, self.ones, self.undefs, self.unknowns)

    def exts(self, new_width: int) -> "Bits":
        """Sign-extend (or truncate from the MSB side) to ``new_width``."""
        if new_width <= self.width:
            return self.extz(new_width)
        if self.width == 0:
            return Bits(new_width)
        sign = self.bit(0)
        return sign.replicate(new_width - self.width).concat(self)

    # ------------------------------------------------------------------
    # Lifting helpers
    # ------------------------------------------------------------------

    def _lift_result(self, width: int) -> "Bits":
        """Whole-vector lifted result used by non-bitwise operations.

        ``unknown`` dominates ``undef``: if any input bit is unknown the
        result is all-unknown, otherwise all-undef.
        """
        if self.unknowns:
            return Bits.unknown(width)
        return Bits.undef(width)

    @staticmethod
    def _join_lift(a: "Bits", b: "Bits", width: int) -> "Bits":
        if a.unknowns or b.unknowns:
            return Bits.unknown(width)
        return Bits.undef(width)

    # ------------------------------------------------------------------
    # Bitwise operations (per-bit precise over the 4-valued domain)
    # ------------------------------------------------------------------

    def lnot(self) -> "Bits":
        mask = (1 << self.width) - 1 if self.width else 0
        known = mask & ~(self.undefs | self.unknowns)
        return Bits(
            self.width, (~self.ones) & known, self.undefs, self.unknowns
        )

    def land(self, other: "Bits") -> "Bits":
        self._check_same_width(other)
        # A bit is definitely 0 if either input is definitely 0.
        zeros = (~self.ones & ~self.undefs & ~self.unknowns) | (
            ~other.ones & ~other.undefs & ~other.unknowns
        )
        ones = self.ones & other.ones
        mask = (1 << self.width) - 1 if self.width else 0
        rest = mask & ~(zeros | ones)
        unknowns = rest & (self.unknowns | other.unknowns)
        undefs = rest & ~unknowns
        return Bits(self.width, ones, undefs, unknowns)

    def lor(self, other: "Bits") -> "Bits":
        return self.lnot().land(other.lnot()).lnot()

    def lxor(self, other: "Bits") -> "Bits":
        self._check_same_width(other)
        known_self = ~(self.undefs | self.unknowns)
        known_other = ~(other.undefs | other.unknowns)
        known = known_self & known_other
        mask = (1 << self.width) - 1 if self.width else 0
        ones = (self.ones ^ other.ones) & known & mask
        rest = mask & ~known
        unknowns = rest & (self.unknowns | other.unknowns)
        undefs = rest & ~unknowns
        return Bits(self.width, ones, undefs, unknowns)

    def _check_same_width(self, other: "Bits") -> None:
        if self.width != other.width:
            raise SailValueError(
                f"width mismatch: bit[{self.width}] vs bit[{other.width}]"
            )

    # ------------------------------------------------------------------
    # Arithmetic (coarse lifting: any undef/unknown poisons the result)
    # ------------------------------------------------------------------

    def _binary_arith(self, other: "Bits", op) -> "Bits":
        self._check_same_width(other)
        if self.is_known and other.is_known:
            return Bits.from_int(op(self.ones, other.ones), self.width)
        return Bits._join_lift(self, other, self.width)

    def add(self, other: "Bits") -> "Bits":
        return self._binary_arith(other, lambda a, b: a + b)

    def sub(self, other: "Bits") -> "Bits":
        return self._binary_arith(other, lambda a, b: a - b)

    def mul(self, other: "Bits") -> "Bits":
        return self._binary_arith(other, lambda a, b: a * b)

    def neg(self) -> "Bits":
        if self.is_known:
            return Bits.from_int(-self.ones, self.width)
        return self._lift_result(self.width)

    def divu(self, other: "Bits") -> "Bits":
        """Unsigned division; division by zero yields undef (POWER leaves it undefined)."""
        self._check_same_width(other)
        if self.is_known and other.is_known:
            if other.ones == 0:
                return Bits.undef(self.width)
            return Bits.from_int(self.ones // other.ones, self.width)
        return Bits._join_lift(self, other, self.width)

    def divs(self, other: "Bits") -> "Bits":
        """Signed division truncating toward zero; /0 and overflow yield undef."""
        self._check_same_width(other)
        if self.is_known and other.is_known:
            a, b = self.to_signed(), other.to_signed()
            if b == 0:
                return Bits.undef(self.width)
            if self.width and a == -(1 << (self.width - 1)) and b == -1:
                return Bits.undef(self.width)
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return Bits.from_int(q, self.width)
        return Bits._join_lift(self, other, self.width)

    def modu(self, other: "Bits") -> "Bits":
        self._check_same_width(other)
        if self.is_known and other.is_known:
            if other.ones == 0:
                return Bits.undef(self.width)
            return Bits.from_int(self.ones % other.ones, self.width)
        return Bits._join_lift(self, other, self.width)

    # ------------------------------------------------------------------
    # Shifts and rotates (by a concrete amount)
    # ------------------------------------------------------------------

    def shiftl(self, amount: int) -> "Bits":
        if amount < 0:
            raise SailValueError("negative shift")
        mask = (1 << self.width) - 1 if self.width else 0
        return Bits(
            self.width,
            (self.ones << amount) & mask,
            (self.undefs << amount) & mask,
            (self.unknowns << amount) & mask,
        )

    def shiftr(self, amount: int) -> "Bits":
        if amount < 0:
            raise SailValueError("negative shift")
        return Bits(
            self.width,
            self.ones >> amount,
            self.undefs >> amount,
            self.unknowns >> amount,
        )

    def rotl(self, amount: int) -> "Bits":
        if self.width == 0:
            return self
        amount %= self.width
        if amount == 0:
            return self
        left = self.slice(amount, self.width - 1)
        right = self.slice(0, amount - 1)
        return left.concat(right)

    # ------------------------------------------------------------------
    # Comparisons (results are lifted bit[1] booleans)
    # ------------------------------------------------------------------

    def eq(self, other: "Bits") -> "Bits":
        self._check_same_width(other)
        if self.is_known and other.is_known:
            return TRUE if self.ones == other.ones else FALSE
        # Definitely unequal if any mutually-known bit differs.
        known = ~(self.undefs | self.unknowns) & ~(other.undefs | other.unknowns)
        if (self.ones ^ other.ones) & known:
            return FALSE
        return Bits._join_lift(self, other, 1)

    def ne(self, other: "Bits") -> "Bits":
        return self.eq(other).lnot()

    def _compare(self, other: "Bits", signed: bool, op) -> "Bits":
        self._check_same_width(other)
        if self.is_known and other.is_known:
            a = self.to_signed() if signed else self.ones
            b = other.to_signed() if signed else other.ones
            return TRUE if op(a, b) else FALSE
        return Bits._join_lift(self, other, 1)

    def lt_s(self, other: "Bits") -> "Bits":
        return self._compare(other, True, lambda a, b: a < b)

    def gt_s(self, other: "Bits") -> "Bits":
        return self._compare(other, True, lambda a, b: a > b)

    def le_s(self, other: "Bits") -> "Bits":
        return self._compare(other, True, lambda a, b: a <= b)

    def ge_s(self, other: "Bits") -> "Bits":
        return self._compare(other, True, lambda a, b: a >= b)

    def lt_u(self, other: "Bits") -> "Bits":
        return self._compare(other, False, lambda a, b: a < b)

    def gt_u(self, other: "Bits") -> "Bits":
        return self._compare(other, False, lambda a, b: a > b)

    def le_u(self, other: "Bits") -> "Bits":
        return self._compare(other, False, lambda a, b: a <= b)

    def ge_u(self, other: "Bits") -> "Bits":
        return self._compare(other, False, lambda a, b: a >= b)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def count_leading_zeros(self) -> "Bits":
        """Number of leading (MSB-side) zero bits, as a vector of same width."""
        if not self.is_known:
            return self._lift_result(self.width)
        count = 0
        for i in range(self.width):
            if self.bit(i).ones:
                break
            count += 1
        return Bits.from_int(count, self.width)

    def popcount(self) -> int:
        if not self.is_known:
            raise SailValueError("popcount of lifted value")
        return bin(self.ones).count("1")

    # ------------------------------------------------------------------
    # Comparison up to undef (used by the section-7 differential harness)
    # ------------------------------------------------------------------

    def matches_up_to_undef(self, concrete: "Bits") -> bool:
        """True when ``concrete`` is a possible refinement of ``self``.

        Every concrete (0/1) bit of ``self`` must agree with ``concrete``;
        ``undef``/``unknown`` bits of ``self`` match anything.
        """
        if self.width != concrete.width:
            return False
        wild = self.undefs | self.unknowns | concrete.undefs | concrete.unknowns
        return (self.ones ^ concrete.ones) & ~wild == 0


TRUE = Bits(1, 1)
FALSE = Bits(1, 0)


def bool_to_bit(flag: bool) -> Bits:
    return TRUE if flag else FALSE


def truth(value: Bits) -> bool:
    """Concrete truth of a lifted bit[1]; raises if undef/unknown."""
    if value.width != 1:
        raise SailValueError(f"condition is bit[{value.width}], expected bit[1]")
    if value.unknowns:
        raise UnknownUsedError("branch on unknown bit")
    if value.undefs:
        raise UndefUsedError("branch on undef bit")
    return bool(value.ones)
