"""Memory events exchanged between threads and the storage subsystem.

Write and barrier identifiers are derived from (thread, instruction, index)
so that identical logical states reached along different interleavings get
identical identifiers -- the exhaustive explorer's memoisation depends on
this determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sail.values import Bits

#: Thread id used for the initial-state writes.
INITIAL_TID = -1


@dataclass(frozen=True, order=True)
class WriteId:
    tid: int
    ioid: Tuple[int, int]  # (tid, index) instruction id; (-1, n) for initial
    index: int  # unit index within the instruction's write


@dataclass(frozen=True)
class Write:
    """One architecturally atomic unit of a memory write."""

    wid: WriteId
    addr: int
    size: int
    value: Bits  # 8*size bits
    is_conditional: bool = False  # produced by a store-conditional

    @property
    def tid(self) -> int:
        return self.wid.tid

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size

    def overlaps_write(self, other: "Write") -> bool:
        return self.overlaps(other.addr, other.size)

    def covers(self, addr: int, size: int) -> bool:
        return self.addr <= addr and addr + size <= self.addr + self.size

    def byte(self, addr: int) -> Bits:
        """The written byte at absolute address ``addr``."""
        offset = addr - self.addr
        if not 0 <= offset < self.size:
            raise ValueError(f"address {addr:#x} outside write {self}")
        return self.value.slice(8 * offset, 8 * offset + 7)

    def extract(self, addr: int, size: int) -> Bits:
        offset = addr - self.addr
        return self.value.slice(8 * offset, 8 * (offset + size) - 1)

    def __str__(self) -> str:
        value = (
            f"0x{self.value.to_int():0{2 * self.size}x}"
            if self.value.is_known
            else self.value.to_bitstring()
        )
        return f"W 0x{self.addr:016x}/{self.size}={value}"


@dataclass(frozen=True, order=True)
class BarrierId:
    tid: int
    ioid: Tuple[int, int]


@dataclass(frozen=True)
class BarrierEvent:
    """A sync/lwsync/eieio barrier committed to the storage subsystem."""

    bid: BarrierId
    kind: str  # "sync" | "lwsync" | "eieio"

    @property
    def tid(self) -> int:
        return self.bid.tid

    def __str__(self) -> str:
        return f"B({self.kind}) t{self.tid}"


def initial_write(index: int, addr: int, size: int, value: Bits) -> Write:
    """A write representing the initial contents of a memory location."""
    return Write(
        WriteId(INITIAL_TID, (INITIAL_TID, index), 0), addr, size, value
    )
