"""The reference backend: single-process depth-first search.

``SequentialDFS`` is the pre-refactor engine re-expressed over the
unified driver: states visited, transitions taken, final states,
deadlocks and outcome sets are bit-identical to the historical
``explore``/``find_witness`` loops (asserted by
``tests/test_search_strategies.py`` against the recorded E6 numbers and
by the fast-state-engine regression tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .base import SearchStrategy
from .core import (
    CollectOutcomes,
    ExplorationResult,
    ExplorationStats,
    StopOnWitness,
    Witness,
    extend_trace,
    run_search,
)
from ..system import SystemState


@dataclass(frozen=True)
class SequentialDFS(SearchStrategy):
    """Memoised in-process DFS -- the baseline every backend must match."""

    name = "sequential"

    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        limit = self.resolve_limit(initial, max_states)
        stats = ExplorationStats()
        visitor = CollectOutcomes(tuple(memory_cells), collect_deadlocks)
        started = time.perf_counter()
        try:
            run_search(
                initial, visitor, limit=limit, stats=stats,
                strict_deadlocks=True,
            )
        finally:
            # Also on ExplorationLimit: the exception carries this same
            # stats object, and its partial work must not report zero
            # seconds (it would inflate downstream throughput numbers).
            stats.seconds = time.perf_counter() - started
        return ExplorationResult(
            visitor.outcomes, stats, visitor.deadlock_states
        )

    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        limit = self.resolve_limit(initial, max_states)
        stats = ExplorationStats()
        visitor = StopOnWitness(predicate, tuple(memory_cells))
        started = time.perf_counter()
        try:
            found = run_search(
                initial,
                visitor,
                limit=limit,
                stats=stats,
                strict_deadlocks=False,
                payload=(),
                extend=extend_trace,
            )
        finally:
            stats.seconds = time.perf_counter() - started
        if found is None:
            return None
        state, path = found
        return Witness(list(path), state, stats)
