"""Automatic generation of sequential single-instruction tests (section 7).

The paper generates tests "for interesting partly-random combinations of
machine state and instruction parameters, taking care with branches and
suchlike", runs each on hardware and in the model, and compares logged
register/memory state up to undef.  Here the golden emulator plays the
hardware; generation is seeded and deterministic.

Per-instruction special-casing mirrors the paper's: a handful of fields need
constrained values (SPR numbers, one-hot FXM masks, sync's L field), update
forms must avoid their invalid forms, and memory accesses are biased into a
seeded data region so loads read interesting bytes.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.model import DecodedInstruction, IsaModel
from ..isa.spec import InstructionSpec

#: Seeded data region for memory-access tests.
DATA_BASE = 0x0001_0000
DATA_SIZE = 0x400
DATA_CENTER = DATA_BASE + DATA_SIZE // 2

#: Where the instruction under test notionally sits.
TEST_CIA = 0x0005_0000

_INTERESTING_64 = (
    0,
    1,
    2,
    (1 << 63) - 1,
    1 << 63,
    (1 << 64) - 1,
    0x8000_0000,
    0x7FFF_FFFF,
    0xFFFF_FFFF,
    0x0123_4567_89AB_CDEF,
)


@dataclass
class MachineSetup:
    """A complete initial machine state, applicable to either emulator."""

    gprs: Tuple[int, ...]
    cr: int
    so: int
    ov: int
    ca: int
    lr: int
    ctr: int
    cia: int
    memory: Dict[int, int] = field(default_factory=dict)


@dataclass
class SequentialTest:
    """One generated test: an opcode plus the initial machine state."""

    spec_name: str
    word: int
    setup: MachineSetup
    seed: int

    def decode(self, model: IsaModel) -> DecodedInstruction:
        return model.decode_or_raise(self.word)


def _random_value(rng: random.Random) -> int:
    if rng.random() < 0.4:
        return rng.choice(_INTERESTING_64)
    return rng.getrandbits(rng.choice((8, 16, 32, 64)))


def _random_setup(rng: random.Random) -> MachineSetup:
    gprs = tuple(_random_value(rng) for _ in range(32))
    memory = {
        DATA_BASE + i: rng.getrandbits(8) for i in range(DATA_SIZE)
    }
    return MachineSetup(
        gprs=gprs,
        cr=rng.getrandbits(32),
        so=rng.getrandbits(1),
        ov=rng.getrandbits(1),
        ca=rng.getrandbits(1),
        lr=rng.getrandbits(62) << 2,
        ctr=rng.getrandbits(64),
        cia=TEST_CIA,
        memory=memory,
    )


def _random_fields(spec: InstructionSpec, rng: random.Random) -> Dict[str, int]:
    fields: Dict[str, int] = {}
    for f in spec.operand_fields():
        fields[f.name] = rng.getrandbits(f.width)
    _constrain_fields(spec, fields, rng)
    return fields


def _constrain_fields(
    spec: InstructionSpec, fields: Dict[str, int], rng: random.Random
) -> None:
    """The per-instruction special cases (13 in the paper; fewer here)."""
    if "SPR" in fields:
        n = rng.choice((1, 8, 9))
        fields["SPR"] = (n & 0x1F) << 5 | (n >> 5)
    if spec.name in ("Mtocrf", "Mfocrf"):
        fields["FXM"] = 1 << rng.randrange(8)
    if spec.name == "Sync":
        fields["L"] = rng.randrange(2)
    if spec.name == "Bcctr":
        # Decrement forms are invalid: force BO[2]=1.
        fields["BO"] |= 0b00100
    if spec.invalid_when is not None:
        for _ in range(64):
            if not spec.is_invalid_form(fields):
                break
            for name in ("RA", "RT", "RS"):
                if name in fields:
                    fields[name] = rng.randrange(32)
        else:
            raise RuntimeError(f"cannot satisfy valid-form for {spec.name}")


def _bias_memory_access(
    spec: InstructionSpec,
    fields: Dict[str, int],
    setup: MachineSetup,
    rng: random.Random,
) -> None:
    """Point base/index registers into the seeded data region."""
    if spec.category not in ("load", "store", "atomic"):
        return
    gprs = list(setup.gprs)
    ra = fields.get("RA", 0)
    if ra != 0:
        gprs[ra] = DATA_CENTER + rng.randrange(-64, 64)
    if "RB" in fields:
        rb = fields["RB"]
        gprs[rb] = rng.randrange(-64, 64) % (1 << 64)
        if ra == 0:
            gprs[rb] = DATA_CENTER + rng.randrange(-64, 64)
    for name in ("D",):
        if name in fields:
            fields[name] = rng.randrange(-128, 128) % (1 << 16)
    if "DS" in fields:
        fields["DS"] = rng.randrange(-32, 32) % (1 << 14)
    # Update forms read and write RA; keep RA distinct from RT/RS biasing.
    setup.gprs = tuple(gprs)


def generate_tests(
    model: IsaModel,
    spec: InstructionSpec,
    count: int,
    seed: int = 0,
) -> List[SequentialTest]:
    """Deterministically generate ``count`` tests for one instruction."""
    tests: List[SequentialTest] = []
    for index in range(count):
        # zlib.crc32 is stable across processes (unlike built-in hash).
        case_seed = zlib.crc32(
            f"{spec.name}/{seed}/{index}".encode()
        ) & 0x7FFF_FFFF
        rng = random.Random(case_seed)
        setup = _random_setup(rng)
        fields = _random_fields(spec, rng)
        _bias_memory_access(spec, fields, setup, rng)
        word = spec.encode(fields)
        decoded = model.decode(word)
        if decoded is None or decoded.spec.name != spec.name:
            raise RuntimeError(
                f"generated word 0x{word:08x} for {spec.name} decodes to "
                f"{decoded.spec.name if decoded else None}"
            )
        tests.append(SequentialTest(spec.name, word, setup, case_seed))
    return tests


def generate_suite(
    model: IsaModel, per_instruction: int, seed: int = 0
) -> List[SequentialTest]:
    """A full suite across every instruction in the corpus."""
    suite: List[SequentialTest] = []
    for spec in model.table.all_specs():
        suite.extend(generate_tests(model, spec, per_instruction, seed))
    return suite
