"""Tests for the exhaustive footprint analysis (section 2.2)."""

import pytest

from repro.isa.model import default_model
from repro.isa.registers import power_registry
from repro.sail.analysis import FootprintAnalysis
from repro.sail.interp import Interp, initial_state, resume
from repro.sail.outcomes import ReadReg
from repro.sail.parser import parse_statement
from repro.sail.values import Bits

REGISTRY = power_registry()
VIEW = REGISTRY.parser_view()
INTERP = Interp(REGISTRY)
ANALYSIS = FootprintAnalysis(INTERP)


def _analyze(source, fields=None, cia=None):
    stmt = parse_statement(source, VIEW)
    return ANALYSIS.analyze(initial_state(stmt, fields or {}), cia=cia)


class TestRegisterFootprints:
    def test_simple_in_out(self):
        fp = _analyze("GPR[3] := GPR[1] + GPR[2]")
        assert {str(s) for s in fp.regs_in} == {"GPR1[0..63]", "GPR2[0..63]"}
        assert {str(s) for s in fp.regs_out} == {"GPR3[0..63]"}

    def test_cr_bit_granular(self):
        fp = _analyze("CR[35] := CR[40] & CR[41]")
        assert {str(s) for s in fp.regs_in} == {"CR[40]", "CR[41]"}
        assert {str(s) for s in fp.regs_out} == {"CR[35]"}

    def test_both_branches_explored(self):
        fp = _analyze(
            "if GPR[1] == GPR[2] then GPR[3] := 0 else GPR[4] := 0"
        )
        outs = {str(s) for s in fp.regs_out}
        assert outs == {"GPR3[0..63]", "GPR4[0..63]"}

    def test_cia_resolved_concretely(self):
        fp = _analyze("GPR[1] := CIA", cia=0x2000)
        assert not fp.regs_in  # CIA creates no dependencies

    def test_conditional_write_guarded_by_field(self):
        # A concrete field value prunes the unreachable branch entirely.
        fp = _analyze(
            "if F == 1 then GPR[3] := 0 else GPR[4] := 0",
            fields={"F": Bits.from_int(1, 1)},
        )
        assert {str(s) for s in fp.regs_out} == {"GPR3[0..63]"}


class TestMemoryFootprints:
    def test_determined_read(self):
        fp = _analyze(
            "{ (bit[64]) EA := 0x0000000000001000; GPR[1] := EXTZ(64, MEMr(EA, 4)) }"
        )
        assert fp.mem_reads == frozenset({(0x1000, 4)})
        assert not fp.mem_reads_undetermined
        assert fp.is_load and not fp.is_store

    def test_register_dependent_address_is_undetermined(self):
        fp = _analyze("MEMw(GPR[1], 4) := (GPR[2])[32..63]")
        assert fp.mem_writes_undetermined
        assert fp.is_store

    def test_lb_datas_ww_scenario(self):
        """Section 2.1.6: after the address read resolves, the write
        footprint is determined even though the data read is pending."""
        stmt = parse_statement(
            "{ (bit[64]) EA := GPR[3]; MEMw(EA, 4) := (GPR[5])[32..63] }",
            VIEW,
        )
        state = initial_state(stmt, {})
        # Resolve the address register read concretely.
        outcome = INTERP.run_to_outcome(state)
        assert isinstance(outcome, ReadReg)
        assert outcome.slice.reg == "GPR3"
        resumed = resume(outcome.state, Bits.from_int(0x1234, 64))
        fp = ANALYSIS.analyze(resumed)
        assert fp.mem_writes == frozenset({(0x1234, 4)})
        assert fp.memory_determined
        # The data register is still to be read (GPRs read full-width;
        # the [32..63] slice applies to the read value).
        assert {str(s) for s in fp.regs_in} == {"GPR5[0..63]"}

    def test_reserve_and_conditional_flags(self):
        fp = _analyze(
            "{ (bit[64]) EA := 0; GPR[1] := EXTZ(64, MEMr_reserve(EA, 4)) }"
        )
        assert fp.reads_reserve
        fp = _analyze(
            "{ (bit[64]) EA := 0; "
            "(bit[1]) ok := STORE_CONDITIONAL(EA, 4, 0x00000001); "
            "CR[34] := ok }"
        )
        assert fp.writes_conditional

    def test_may_touch_memory(self):
        fp = _analyze(
            "{ (bit[64]) EA := 0x0000000000001000; MEMw(EA, 4) := 0x00000001 }"
        )
        assert fp.may_touch_memory(0x1002, 1)
        assert not fp.may_touch_memory(0x1004, 4)
        assert fp.may_write_memory(0x0FFD, 4)


class TestNiaAnalysis:
    def test_fallthrough_only(self):
        fp = _analyze("GPR[1] := GPR[2]")
        assert fp.nia_fallthrough and not fp.nias and not fp.nia_indirect

    def test_unconditional_branch(self):
        fp = _analyze("NIA := CIA + EXTZ(64, 0x10)", cia=0x1000)
        assert fp.nias == frozenset({0x1010})
        assert not fp.nia_fallthrough

    def test_conditional_branch_on_register(self):
        fp = _analyze(
            "if CR[34] == 0b1 then NIA := CIA + EXTZ(64, 0x08)",
            cia=0x1000,
        )
        assert fp.nias == frozenset({0x1008})
        assert fp.nia_fallthrough
        assert {str(s) for s in fp.regs_in} == {"CR[34]"}

    def test_indirect_branch(self):
        fp = _analyze("NIA := LR[0..61] : 0b00")
        assert fp.nia_indirect


class TestRealInstructions:
    """Static footprints of decoded corpus instructions."""

    @pytest.fixture(scope="class")
    def model(self):
        return default_model()

    def test_bc_reads_one_cr_bit(self, model):
        # bc 12,2,+8 -- branch if CR0.EQ
        word = (16 << 26) | (12 << 21) | (2 << 16) | ((8 >> 2) << 2)
        fp = model.static_footprint(model.decode_or_raise(word), cia=0x100)
        assert {str(s) for s in fp.regs_in} == {"CR[34]"}
        assert fp.nias == frozenset({0x108})
        assert fp.nia_fallthrough

    def test_branch_always_reads_nothing(self, model):
        # bc 20,0,+8 -- branch always: no CR or CTR dependency
        word = (16 << 26) | (20 << 21) | (0 << 16) | ((8 >> 2) << 2)
        fp = model.static_footprint(model.decode_or_raise(word), cia=0x100)
        assert not fp.regs_in
        assert not fp.nia_fallthrough

    def test_bdnz_touches_ctr_not_cr(self, model):
        # bc 16,0,+8 -- decrement CTR, branch if nonzero
        word = (16 << 26) | (16 << 21) | (0 << 16) | ((8 >> 2) << 2)
        fp = model.static_footprint(model.decode_or_raise(word), cia=0x100)
        assert {s.reg for s in fp.regs_in} == {"CTR"}
        assert {s.reg for s in fp.regs_out} == {"CTR"}

    def test_stw_footprint(self, model):
        # stw r7,0(r1)
        word = (36 << 26) | (7 << 21) | (1 << 16)
        fp = model.static_footprint(model.decode_or_raise(word), cia=0)
        assert fp.is_store and not fp.is_load
        assert fp.mem_writes_undetermined  # address register unresolved

    def test_add_record_form_writes_cr0(self, model):
        word = (31 << 26) | (3 << 21) | (1 << 16) | (7 << 11) | (266 << 1) | 1
        fp = model.static_footprint(model.decode_or_raise(word), cia=0)
        assert any(str(s) == "CR[32..35]" for s in fp.regs_out)
        assert any(str(s) == "XER[32]" for s in fp.regs_in)  # SO bit

    def test_analysis_is_memoised(self, model):
        word = (14 << 26) | (1 << 21) | 5  # addi r1,r0,5
        instruction = model.decode_or_raise(word)
        first = model.static_footprint(instruction, cia=0)
        second = model.static_footprint(instruction, cia=0)
        assert first is second
