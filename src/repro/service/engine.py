"""The envelope engine: one request API over the whole query path.

Every way of asking the oracle a question -- ``ppcmem2 run`` on a file,
the corpus runner, the testgen harness's ``check_suite``, the serve
daemon's job queue -- used to build its own strategy/reduction/budget
plumbing and call ``run_litmus``/``run_corpus`` directly.  This module
inverts that: ``EnvelopeEngine.run_request(request) -> Verdict`` is the
single façade, with

* canonicalisation: the litmus source is parsed and re-emitted through
  ``litmus/emit.emit_litmus`` (a parse/emit fixed point), so two
  differently-formatted copies of the same test are the same query;
* strategy construction through ``concurrency.search.build_strategy``
  (the one shared path for ``--strategy``/``--shard-depth``/
  ``--reduction``/``--context-bound``);
* an optional persistent ``VerdictCache``: a repeated query returns the
  stored verdict in microseconds, and any parameter change (budget,
  reduction, backend, ...) correctly misses because the parameters are
  part of the key (``service.cache.cache_key``);
* ``run_batch`` for many requests at once, scheduling cache misses
  through the parallel corpus runner under the ``plan_worker_budget``
  policy -- this is the daemon's job executor.

Verdicts are plain data (JSON-serialisable via ``to_payload``), so the
same object flows from the engine into the cache, over the daemon's
HTTP API, and back out of ``ppcmem2 client``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..concurrency.params import DEFAULT_PARAMS, ModelParams
from ..concurrency.search import build_strategy
from ..concurrency.search.core import ExplorationLimit, ExplorationStats
from .cache import VerdictCache, cache_key

#: Outcome tuples as produced by the search core: hashable nested tuples.
Outcome = Tuple[Tuple, Tuple]

#: ``EngineRequest`` fields the daemon accepts from JSON "options".
REQUEST_OPTION_FIELDS = (
    "strategy",
    "jobs",
    "shard_depth",
    "reduction",
    "context_bound",
    "symmetry",
    "max_states",
)


@dataclass(frozen=True)
class EngineRequest:
    """One oracle query: a litmus source plus the exploration parameters.

    ``strategy`` may be a registry name (the only form the daemon's JSON
    API accepts), a pre-built ``SearchStrategy`` instance, or ``None``
    (sequential DFS).  All other fields are plain data, so requests
    serialise over the service protocol unchanged.
    """

    source: str
    name: Optional[str] = None
    strategy: Any = None
    jobs: Optional[int] = None
    shard_depth: Optional[int] = None
    reduction: str = "none"
    context_bound: Optional[int] = None
    symmetry: bool = False
    max_states: Optional[int] = None

    @classmethod
    def from_options(
        cls, source: str, name: Optional[str] = None, options: Optional[dict] = None
    ) -> "EngineRequest":
        """Build a request from a JSON-safe options dict (daemon path)."""
        options = options or {}
        unknown = set(options) - set(REQUEST_OPTION_FIELDS)
        if unknown:
            raise ValueError(f"unknown request options: {sorted(unknown)}")
        return cls(source=source, name=name, **options)


@dataclass
class Verdict:
    """The oracle's answer to one request -- plain, serialisable data."""

    name: str
    status: str
    quantifier: str
    witnessed: bool
    holds_always: bool
    complete: bool
    outcomes: FrozenSet[Outcome]
    outcome_lines: Tuple[Tuple[str, bool], ...]
    stats: Dict[str, Any]
    error: Optional[str]
    key: str
    cached: bool = False

    def to_payload(self) -> Dict[str, Any]:
        """JSON-encodable form: what the cache stores and the API ships."""
        return {
            "name": self.name,
            "status": self.status,
            "quantifier": self.quantifier,
            "witnessed": self.witnessed,
            "holds_always": self.holds_always,
            "complete": self.complete,
            "outcomes": [
                [
                    [list(entry) for entry in registers],
                    [list(cell) for cell in memory],
                ]
                for registers, memory in sorted(self.outcomes, key=repr)
            ],
            "outcome_lines": [list(line) for line in self.outcome_lines],
            "stats": dict(self.stats),
            "error": self.error,
            "key": self.key,
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], cached: bool = False
    ) -> "Verdict":
        outcomes = frozenset(
            (
                tuple(tuple(entry) for entry in registers),
                tuple(tuple(cell) for cell in memory),
            )
            for registers, memory in payload["outcomes"]
        )
        return cls(
            name=payload["name"],
            status=payload["status"],
            quantifier=payload["quantifier"],
            witnessed=payload["witnessed"],
            holds_always=payload["holds_always"],
            complete=payload["complete"],
            outcomes=outcomes,
            outcome_lines=tuple(
                (text, satisfied)
                for text, satisfied in payload["outcome_lines"]
            ),
            stats=dict(payload["stats"]),
            error=payload["error"],
            key=payload["key"],
            cached=cached,
        )


@dataclass
class BatchResult:
    """Verdicts for a batch of requests plus scheduling/cache metadata."""

    verdicts: List[Verdict]
    jobs: int
    wall_seconds: float
    hits: int
    misses: int

    def merged_stats(self) -> ExplorationStats:
        merged = ExplorationStats()
        for verdict in self.verdicts:
            merged.merge(_stats_from_dict(verdict.stats))
        return merged


@dataclass(frozen=True)
class _Resolved:
    """A request after canonicalisation: what actually runs and its key."""

    name: str
    test: Any  # parsed LitmusTest
    canonical_source: str
    strategy: Any  # resolved SearchStrategy instance
    max_states: Optional[int]
    key: str


def _stats_to_dict(stats: ExplorationStats) -> Dict[str, Any]:
    return {
        "states_visited": stats.states_visited,
        "transitions_taken": stats.transitions_taken,
        "final_states": stats.final_states,
        "deadlocks": stats.deadlocks,
        "max_frontier": stats.max_frontier,
        "unique_states": stats.unique_states,
        "seconds": stats.seconds,
    }


def _stats_from_dict(data: Dict[str, Any]) -> ExplorationStats:
    return ExplorationStats(
        states_visited=data.get("states_visited", 0),
        transitions_taken=data.get("transitions_taken", 0),
        final_states=data.get("final_states", 0),
        deadlocks=data.get("deadlocks", 0),
        max_frontier=data.get("max_frontier", 0),
        seconds=data.get("seconds", 0.0),
        unique_states=data.get("unique_states", 0),
    )


#: ``error`` text for complete=False results, matching the corpus runner.
_PARTIAL_ERROR = "state budget exhausted (partial outcomes)"


class EnvelopeEngine:
    """The shared query engine behind the CLI, the harness and the daemon.

    ``cache`` is an optional ``VerdictCache``; without one every request
    explores cold (the pre-service behaviour).  ``sail_backend`` pins
    the ISA execution backend recorded in every cache key; ``params``
    are the model parameters (also part of the key).
    """

    def __init__(
        self,
        cache: Optional[VerdictCache] = None,
        sail_backend: Optional[str] = None,
        params: ModelParams = DEFAULT_PARAMS,
    ):
        from ..isa.model import resolve_sail_backend

        self.cache = cache
        self.sail_backend = resolve_sail_backend(sail_backend)
        self.params = params
        self._model = None

    # ------------------------------------------------------------------

    @property
    def model(self):
        if self._model is None:
            from ..isa.model import IsaModel, default_model, resolve_sail_backend

            if self.sail_backend == resolve_sail_backend(None):
                self._model = default_model()
            else:
                self._model = IsaModel(sail_backend=self.sail_backend)
        return self._model

    def resolve(self, request: EngineRequest) -> _Resolved:
        """Parse + canonicalise a request and derive its cache key.

        The key is computed from the *resolved* strategy (name,
        reduction, context bound after ``build_strategy`` applied the
        request's options), so what is keyed is exactly what runs.
        """
        from ..litmus.emit import emit_litmus
        from ..litmus.parser import parse_litmus

        test = parse_litmus(request.source)
        canonical = emit_litmus(test)
        strategy = build_strategy(
            request.strategy,
            jobs=request.jobs,
            shard_depth=request.shard_depth,
            reduction=request.reduction,
            context_bound=request.context_bound,
            symmetry=request.symmetry,
        )
        key = cache_key(
            canonical,
            strategy=strategy.name,
            reduction=strategy.reduction,
            context_bound=strategy.context_bound,
            symmetry=getattr(strategy, "symmetry", False),
            max_states=request.max_states,
            sail_backend=self.sail_backend,
            params=self.params,
        )
        return _Resolved(
            name=request.name or test.name,
            test=test,
            canonical_source=canonical,
            strategy=strategy,
            max_states=request.max_states,
            key=key,
        )

    def request_key(self, request: EngineRequest) -> str:
        return self.resolve(request).key

    # ------------------------------------------------------------------

    def run_request(self, request: EngineRequest) -> Verdict:
        """Answer one request: cache hit in microseconds, or explore."""
        resolved = self.resolve(request)
        hit = self._lookup(resolved)
        if hit is not None:
            return hit
        verdict = self._explore(resolved)
        self._store(resolved, verdict)
        return verdict

    def run_batch(
        self,
        requests: Sequence[EngineRequest],
        jobs: Optional[int] = None,
    ) -> BatchResult:
        """Answer many requests, fanning cache misses across workers.

        Misses are grouped by their (strategy, budget) parameter tuple
        and each group runs through the parallel corpus runner, which
        splits the ``jobs`` budget between per-test and intra-test
        workers via ``plan_worker_budget``.  Verdict order matches
        request order.
        """
        from ..concurrency.parallel import explore_corpus

        started = time.perf_counter()
        resolved = [self.resolve(request) for request in requests]
        verdicts: List[Optional[Verdict]] = [None] * len(resolved)
        hits = 0
        for i, res in enumerate(resolved):
            hit = self._lookup(res)
            if hit is not None:
                verdicts[i] = hit
                hits += 1
        miss_groups: Dict[Tuple, List[int]] = {}
        for i, res in enumerate(resolved):
            if verdicts[i] is None:
                group = (res.strategy, res.max_states)
                miss_groups.setdefault(group, []).append(i)
        report_jobs = 1
        for (strategy, max_states), indexes in miss_groups.items():
            report = explore_corpus(
                [
                    (resolved[i].name, resolved[i].canonical_source)
                    for i in indexes
                ],
                jobs=jobs,
                params=self.params,
                max_states=max_states,
                strategy=strategy,
            )
            report_jobs = max(report_jobs, report.jobs)
            for i, result in zip(indexes, report.results):
                verdict = self._verdict_from_corpus(resolved[i], result)
                verdicts[i] = verdict
                self._store(resolved[i], verdict)
        return BatchResult(
            verdicts=list(verdicts),
            jobs=report_jobs,
            wall_seconds=time.perf_counter() - started,
            hits=hits,
            misses=len(resolved) - hits,
        )

    # ------------------------------------------------------------------

    def _lookup(self, resolved: _Resolved) -> Optional[Verdict]:
        if self.cache is None:
            return None
        payload = self.cache.get(resolved.key)
        if payload is None:
            return None
        return Verdict.from_payload(payload, cached=True)

    def _store(self, resolved: _Resolved, verdict: Verdict) -> None:
        if self.cache is None:
            return
        # Partial outcome sets from the sharded backend depend on worker
        # timing; every other verdict (complete, or deterministically
        # truncated by sequential/bounded search) is safe to memoise.
        if not verdict.complete and resolved.strategy.name == "sharded":
            return
        self.cache.put(resolved.key, verdict.name, verdict.to_payload())

    def _explore(self, resolved: _Resolved) -> Verdict:
        from ..litmus.runner import run_litmus

        try:
            result = run_litmus(
                resolved.test,
                self.model,
                params=self.params,
                max_states=resolved.max_states,
                strategy=resolved.strategy,
            )
        except ExplorationLimit as limit:
            stats = limit.stats if limit.stats is not None else ExplorationStats()
            return Verdict(
                name=resolved.name,
                status="StateLimit",
                quantifier=resolved.test.quantifier,
                witnessed=False,
                holds_always=False,
                complete=False,
                outcomes=frozenset(),
                outcome_lines=(),
                stats=_stats_to_dict(stats),
                error=str(limit),
                key=resolved.key,
            )
        complete = result.exploration.complete
        return Verdict(
            name=resolved.name,
            status=result.status,
            quantifier=resolved.test.quantifier,
            witnessed=result.witnessed,
            holds_always=result.holds_always,
            complete=complete,
            outcomes=frozenset(result.outcomes),
            outcome_lines=tuple(result.outcome_table()),
            stats=_stats_to_dict(result.exploration.stats),
            error=None if complete else _PARTIAL_ERROR,
            key=resolved.key,
        )

    def _verdict_from_corpus(self, resolved: _Resolved, result) -> Verdict:
        """Adapt a worker's ``CorpusTestResult`` into a ``Verdict``.

        The outcome table is recomputed here (workers ship only the raw
        outcome tuples): the address layout is a deterministic function
        of the test, so the decoded lines are identical to what a
        single-process run would have printed.
        """
        from ..concurrency.search.core import ExplorationResult
        from ..litmus.runner import LitmusResult, addresses_for

        lines: Tuple[Tuple[str, bool], ...] = ()
        if result.outcomes:
            shell = LitmusResult(
                test=resolved.test,
                outcomes=set(result.outcomes),
                witnessed=result.witnessed,
                holds_always=result.holds_always,
                exploration=ExplorationResult(
                    outcomes=set(result.outcomes),
                    stats=result.stats,
                    complete=result.complete,
                ),
                addresses=addresses_for(resolved.test),
            )
            lines = tuple(shell.outcome_table())
        return Verdict(
            name=resolved.name,
            status=result.status,
            quantifier=resolved.test.quantifier,
            witnessed=result.witnessed,
            holds_always=result.holds_always,
            complete=result.complete,
            outcomes=frozenset(result.outcomes),
            outcome_lines=lines,
            stats=_stats_to_dict(result.stats),
            error=result.error,
            key=resolved.key,
        )
