"""The independent golden emulator (the section-7 hardware stand-in)."""

from .emulator import GoldenError, GoldenMachine, execute

__all__ = ["GoldenError", "GoldenMachine", "execute"]
