"""Shared pseudocode fragments for the instruction corpus.

The vendor manual describes record-form (``Rc``) CR0 setting and overflow
(``OE``) handling in prose rather than pseudocode; the paper notes these had
to be patched in during extraction (section 4).  We encode them once here as
textual fragments spliced into each instruction's Sail source.
"""

from __future__ import annotations

ZERO64 = "EXTZ(64, 0b0)"

#: CR0 <- LT/GT/EQ of the 64-bit result, with SO copied from XER (prose
#: rule).  Branch-free formulation: LT is the sign bit, EQ is the zero test,
#: GT the remainder -- so results with undef bits (mulhw, divw) yield undef
#: CR0 bits instead of an execution error (section 2.1.7 lifting).
CR0_RECORD = (
    "if Rc == 1 then {{ "
    "(bit[1]) eq0 := {r} == EXTZ(64, 0b0); "
    "CR[32..35] := ({r}[0]) : (~{r}[0] & ~eq0) : eq0 : XER.SO }}"
)

#: Unconditional CR0 setting (andi., andis., addic. record forms).
CR0_ALWAYS = (
    "(bit[1]) eq0 := {r} == EXTZ(64, 0b0); "
    "CR[32..35] := ({r}[0]) : (~{r}[0] & ~eq0) : eq0 : XER.SO"
)

#: Signed-overflow detection for {r} := {a} + {b} (+ carry-in), prose rule:
#: OV when the addends' signs agree and the result's sign differs.
OV_ADD = (
    "if OE == 1 then {{ "
    "(bit[1]) ov := ({a}[0] == {b}[0]) & ({r}[0] != {a}[0]); "
    "XER.OV := ov; XER.SO := XER.SO | ov }}"
)

#: Effective-address computation: (RA|0) + EXTS(D)  (D-form).
EA_D = (
    "(bit[64]) b := 0; "
    "if RA == 0 then b := 0 else b := GPR[RA]; "
    "(bit[64]) EA := b + EXTS(D)"
)

#: Effective-address computation: (RA|0) + EXTS(DS || 0b00)  (DS-form).
EA_DS = (
    "(bit[64]) b := 0; "
    "if RA == 0 then b := 0 else b := GPR[RA]; "
    "(bit[64]) EA := b + EXTS(DS : 0b00)"
)

#: Effective-address computation: (RA|0) + (RB)  (X-form).
EA_X = (
    "(bit[64]) b := 0; "
    "if RA == 0 then b := 0 else b := GPR[RA]; "
    "(bit[64]) EA := b + GPR[RB]"
)

#: Update-form addresses (RA must not be 0; checked by invalid_when).
EA_D_UPDATE = "(bit[64]) EA := GPR[RA] + EXTS(D)"
EA_DS_UPDATE = "(bit[64]) EA := GPR[RA] + EXTS(DS : 0b00)"
EA_X_UPDATE = "(bit[64]) EA := GPR[RA] + GPR[RB]"


def gpr_slice(size: int) -> str:
    """The low ``size`` bytes of GPR[RS], as stored by stb/sth/stw/std."""
    if size == 8:
        return "GPR[RS]"
    lo = 64 - 8 * size
    return f"(GPR[RS])[{lo}..63]"


def load_extend(size: int, signed: bool) -> str:
    """Wrap a memory-read result to 64 bits (zero- or sign-extending)."""
    op = "EXTS" if signed else "EXTZ"
    return f"{op}(64, MEMr(EA, {size}))"


def execute_clause(name: str, fields: str, body: str) -> str:
    """Assemble a full ``function clause execute`` definition."""
    if fields:
        return f"function clause execute ({name} ({fields})) =\n{{ {body} }}"
    return f"function clause execute ({name}) =\n{{ {body} }}"
