"""E3 -- concurrent validation over the litmus corpus (paper section 7).

The paper checks 2175 litmus tests exhaustively, verifying that the model's
result set includes everything observed on POWER G5/6/7/8 hardware, and
fixed the small number of model problems this identified.  Our corpus is
the canonical named shapes (the full diy suite is not redistributable);
the bench reports soundness (observed => allowed) and exact agreement with
the published architectural statuses.

Set REPRO_E3_FULL=1 to include the multi-minute 3-4 thread shapes.
"""

import os

from conftest import print_table

from repro.litmus.library import corpus
from repro.litmus.runner import run_litmus

FULL = os.environ.get("REPRO_E3_FULL") == "1"

#: Exhaustive exploration of these exceeds bench latency budgets.
HEAVY = {
    "IRIW", "IRIW+addrs", "IRIW+syncs", "RWC+syncs", "ISA2",
    "2+2W", "2+2W+syncs", "2+2W+lwsyncs", "LB+datas+WW", "LB+addrs+WW",
    "PPOCA", "PPOAA", "WRC", "WRC+addrs", "WRC+sync+addr", "WRC+lwsync+addr",
    "ISA2+sync+data+addr",
}


def test_e3_litmus_validation(model, benchmark):
    entries = [
        entry for entry in corpus() if FULL or entry.name not in HEAVY
    ]

    def run_corpus():
        results = {}
        for entry in entries:
            results[entry.name] = run_litmus(entry.parse(), model)
        return results

    results = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    rows = []
    sound = exact = 0
    for entry in entries:
        result = results[entry.name]
        sound_here = (not entry.observed) or result.witnessed
        exact_here = result.status == entry.architected
        sound += sound_here
        exact += exact_here
        rows.append(
            (
                entry.name,
                entry.architected,
                "yes" if entry.observed else "no",
                result.status,
                result.exploration.stats.states_visited,
                "ok" if exact_here else "MISMATCH",
            )
        )
    print_table(
        "E3: concurrent validation "
        "(paper: 2175 tests, model result sets include all hw-observed)",
        ["test", "architected", "hw-obs", "model", "states", "verdict"],
        rows,
    )
    print(
        f"\ncorpus: {len(entries)} shapes | sound: {sound}/{len(entries)} "
        f"| exact status agreement: {exact}/{len(entries)}"
    )
    assert sound == len(entries), "model unsound vs hardware observations"
    assert exact == len(entries), "model disagrees with architected status"
