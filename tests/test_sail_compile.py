"""Differential equivalence: compiled Sail backend vs the reference interpreter.

The AOT compiler (``repro.sail.compile``) must be *observationally
identical* to the interpreter: same outcome sequence for every
instruction under every injected value stream, same pending-state resume
and restart behaviour, same footprints, and -- through the concurrency
model -- the same litmus verdicts and exploration state counts.  These
tests pin all of that, so the compiled backend can stay the default
without weakening the interpreter's role as the executable reference.
"""

import pytest

from repro.isa.model import IsaModel
from repro.sail.outcomes import (
    Barrier,
    Done,
    Internal,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from repro.sail.values import Bits
from repro.testgen.sequential import generate_tests

MODEL_I = IsaModel(sail_backend="interp")
MODEL_C = IsaModel(sail_backend="compiled")

SPEC_NAMES = sorted(s.name for s in MODEL_I.table.all_specs())

#: Safety valve: no instruction in the corpus takes anywhere near this
#: many outcomes; hitting it means a backend diverged into a loop.
MAX_STEPS = 4096


def _salted(width, salt, position):
    """A deterministic, width-correct injected value for step ``position``."""
    raw = (0x9E3779B97F4A7C15 * (salt + 1) + 0x100003 * (position + 1))
    return Bits.from_int(raw & ((1 << width) - 1), width)


def _fingerprint(out):
    """An outcome's observable content, with the opaque state dropped."""
    if isinstance(out, ReadMem):
        return ("ReadMem", out.kind, out.addr, out.size)
    if isinstance(out, WriteMem):
        return ("WriteMem", out.kind, out.addr, out.size, out.value)
    if isinstance(out, Barrier):
        return ("Barrier", out.kind)
    if isinstance(out, ReadReg):
        return ("ReadReg", out.slice)
    if isinstance(out, WriteReg):
        return ("WriteReg", out.slice, out.value)
    if isinstance(out, Internal):
        return ("Internal",)
    if isinstance(out, Done):
        return ("Done",)
    raise AssertionError(f"unknown outcome {out!r}")


def _reply(out, salt, position, sc_success):
    """The value the harness injects to resume ``out``."""
    if isinstance(out, ReadReg):
        return _salted(out.slice.width, salt, position)
    if isinstance(out, ReadMem):
        return _salted(out.size * 8, salt, position)
    if isinstance(out, WriteMem) and out.kind == "conditional":
        return Bits.from_int(1 if sc_success else 0, 1)
    return None


def _drive(model, word, salt, sc_success=True):
    """Run one instruction to Done, feeding a deterministic value stream.

    Returns the full fingerprinted outcome trace.  Both backends see the
    same injected values (the stream depends only on outcome shape and
    step index), so equal traces mean equal observable behaviour.
    """
    instr = model.decode_or_raise(word)
    state = model.initial_state(instr)
    trace = []
    out = model.run_to_outcome(state)
    for position in range(MAX_STEPS):
        trace.append(_fingerprint(out))
        if isinstance(out, Done):
            return trace
        resumed = model.resume(out.state, _reply(out, salt, position, sc_success))
        out = model.run_to_outcome(resumed)
    raise AssertionError(f"word 0x{word:08x} took more than {MAX_STEPS} outcomes")


def _words_for(spec_name, count=3):
    spec = MODEL_I.table.by_name(spec_name)
    return [t.word for t in generate_tests(MODEL_I, spec, count=count, seed=2026)]


# ----------------------------------------------------------------------
# Outcome-trace equivalence over the whole instruction corpus
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_outcome_traces_equal(spec_name):
    """Every spec, several encodings and value streams: identical traces."""
    for word in _words_for(spec_name):
        for salt in (0, 1):
            trace_i = _drive(MODEL_I, word, salt)
            trace_c = _drive(MODEL_C, word, salt)
            assert trace_i == trace_c, (
                f"{spec_name} word=0x{word:08x} salt={salt}: "
                f"interp {trace_i} != compiled {trace_c}"
            )
            # Store-conditionals have a second externally chosen path:
            # the reservation can fail.  Drive it on both backends too.
            if any(f[0] == "WriteMem" and f[1] == "conditional" for f in trace_i):
                fail_i = _drive(MODEL_I, word, salt, sc_success=False)
                fail_c = _drive(MODEL_C, word, salt, sc_success=False)
                assert fail_i == fail_c
                assert fail_i != trace_i  # the flag is actually observed


# ----------------------------------------------------------------------
# Pending-state protocol: resume, restart, memo identity
# ----------------------------------------------------------------------


def _first_pending(model, word, predicate):
    """Drive until ``predicate(outcome)`` holds; return that outcome."""
    state = model.initial_state(model.decode_or_raise(word))
    out = model.run_to_outcome(state)
    for position in range(MAX_STEPS):
        if predicate(out):
            return out
        assert not isinstance(out, Done)
        resumed = model.resume(out.state, _reply(out, 0, position, True))
        out = model.run_to_outcome(resumed)
    raise AssertionError("predicate never matched")


def test_pending_state_supports_restart():
    """One pending snapshot can be resumed with different values.

    The thread model restarts speculative reads by re-resuming an old
    pending state with a new value; both backends must treat the pending
    state as an immutable snapshot, not a consumed continuation.
    """
    word = _words_for("Lwz", count=1)[0]
    pend_i = _first_pending(MODEL_I, word, lambda o: isinstance(o, ReadMem))
    pend_c = _first_pending(MODEL_C, word, lambda o: isinstance(o, ReadMem))
    assert _fingerprint(pend_i) == _fingerprint(pend_c)
    for value_int in (0, 1, 0xDEADBEEF):
        value = Bits.from_int(value_int, pend_i.size * 8)
        tails = []
        for model, pend in ((MODEL_I, pend_i), (MODEL_C, pend_c)):
            out = model.run_to_outcome(model.resume(pend.state, value))
            tail = []
            for position in range(MAX_STEPS):
                tail.append(_fingerprint(out))
                if isinstance(out, Done):
                    break
                resumed = model.resume(out.state, _reply(out, 0, position, True))
                out = model.run_to_outcome(resumed)
            tails.append(tail)
        assert tails[0] == tails[1], f"value {value_int:#x}: {tails}"


def test_compiled_states_are_memo_identical():
    """resume/run_to_outcome return the *same object* for the same inputs.

    The exploration engine's state keys and outcome memos hit by
    identity; a compiled backend that rebuilt equal-but-distinct states
    would silently destroy the PR1 memoisation wins.
    """
    for spec_name in ("Lwz", "Stw", "Add", "Sync"):
        word = _words_for(spec_name, count=1)[0]
        instr = MODEL_C.decode_or_raise(word)
        s0 = MODEL_C.initial_state(instr)
        assert MODEL_C.initial_state(instr) is s0
        out = MODEL_C.run_to_outcome(s0)
        assert MODEL_C.run_to_outcome(s0) is out
        if not isinstance(out, Done):
            value = _reply(out, 0, 0, True)
            r1 = MODEL_C.resume(out.state, value)
            assert MODEL_C.resume(out.state, value) is r1
            assert hash(r1) == hash(MODEL_C.resume(out.state, value))


# ----------------------------------------------------------------------
# Footprints: compiled states delegate to the reference interpreter
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_static_footprints_equal(spec_name):
    for word in _words_for(spec_name, count=2):
        instr_i = MODEL_I.decode_or_raise(word)
        instr_c = MODEL_C.decode_or_raise(word)
        fp_i = MODEL_I.static_footprint(instr_i)
        fp_c = MODEL_C.static_footprint(instr_c)
        assert fp_i == fp_c, f"{spec_name} word=0x{word:08x}"


def test_partial_footprints_equal():
    """Mid-execution footprints agree: replay-to-interp is faithful.

    A value-pending state cannot be analysed (the interpreter refuses to
    step it), so the partially executed state under test is the one
    *after* resuming the first register read -- some operands resolved,
    the memory access still ahead.
    """
    for spec_name in ("Lwz", "Lwzx", "Stwx", "Lwarx"):
        word = _words_for(spec_name, count=1)[0]
        mids = []
        for model in (MODEL_I, MODEL_C):
            pend = _first_pending(model, word, lambda o: isinstance(o, ReadReg))
            mids.append((model, model.resume(pend.state, _reply(pend, 0, 0, True))))
        (model_i, mid_i), (model_c, mid_c) = mids
        assert model_i.footprint(mid_i) == model_c.footprint(mid_c), spec_name


# ----------------------------------------------------------------------
# Whole-oracle equivalence: litmus verdicts and exploration shape
# ----------------------------------------------------------------------

#: The representative E6 family plus the reservation tests (the two
#: instruction classes with backend-visible resume flags).
CORPUS_SUBSET = [
    "MP",
    "MP+syncs",
    "SB+syncs",
    "R",
    "WRC+sync+addr",
    "ATOM-base",
    "ATOM-intervene",
]


@pytest.mark.parametrize("test_name", CORPUS_SUBSET)
def test_litmus_verdicts_and_counts_identical(test_name):
    from repro.litmus.library import by_name
    from repro.litmus.runner import run_litmus

    test = by_name(test_name).parse()
    result_i = run_litmus(test, MODEL_I)
    result_c = run_litmus(test, MODEL_C)
    assert result_i.status == result_c.status
    assert result_i.outcomes == result_c.outcomes
    stats_i = result_i.exploration.stats
    stats_c = result_c.exploration.stats
    assert (
        stats_i.states_visited,
        stats_i.transitions_taken,
        stats_i.final_states,
        stats_i.unique_states,
    ) == (
        stats_c.states_visited,
        stats_c.transitions_taken,
        stats_c.final_states,
        stats_c.unique_states,
    ), test_name
