"""Axiomatic commit/propagation-order solver for generated cycles.

``concurrent.closure_expectation`` decides most cycles from per-segment
ordering composition, but leaves two whole classes unasserted: write-
started lwsync/eieio segments feeding a coherence edge (the
R+lwsync+sync family) and 3+-thread cycles resting on barrier
cumulativity (WRC+lwsync+addr vs WRC+addrs).  This module closes that
gap with a small per-cycle constraint solver over *symbolic event
times*, mirroring the operational model's racy transitions
(``concurrency.system`` / ``concurrency.storage``) as order constraints:

* every read ``r`` has a satisfaction time ``S(r)``;
* every write ``w`` has one arrival time per thread: ``P(w, tid(w))``
  is its commit (acceptance into the storage subsystem), ``P(w, t)``
  its propagation to thread ``t`` -- *optional*: a write only reaches
  the threads that read it, that barriers push it to, or its own;
* every write has a coherence-point time ``CP(w)`` (the PLDI12-style
  coherence-commitment transition: barrier-separated writes order their
  coherence points even when their propagation sets are disjoint, which
  is what forbids 2+2W+lwsyncs);
* every fence has a commit time ``BC(b)``, optional per-thread
  propagation times ``BP(b, t)``, and -- for ``sync`` -- an
  acknowledgement time ``BA(b)`` that requires propagation to *every*
  thread first (the Group-A / cumulativity force).

Each cycle edge contributes constraints over those variables (reads-
from, from-reads and coherence per location arc; dependency commit
blocking; fence ordering and cumulativity).  The conjunction asserts
"the forbidden outcome happened", so:

* constraints satisfiable (the order graph is acyclic) -- some
  interleaving realises the cycle: **Allowed**;
* unsatisfiable (every completion has an order cycle) -- **Forbidden**,
  and the contradiction cycle names the architectural reason.

Two model subtleties make this a (very small) *search*, not a single
graph check:

* a barrier propagates to thread ``t`` only after its Group A is
  *effectively* there -- a Group-A write counts as propagated when a
  coherence-later write to the same location already reached ``t``
  (``storage.write_effectively_propagated``; without it 2+2W+syncs
  would wedge).  Each such obligation is a disjunction over which write
  carries it, and the solver branches over the choices;
* which ``P(w, t)``/``BP(b, t)`` variables exist at all is the least
  set forced by the choices (reads-from seeds, barrier pushes), since
  every constraint is monotone in the variable set -- the adversarial
  execution propagates as little as possible.

``decide`` is cross-checked against all 31 ``diy.CURATED_CYCLES``
architected statuses and against the closure oracle on every shape both
decide (``tests/test_axiomatic.py``), and validated against the
operational model over generated suites through ``check_suite``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..litmus.diy import Edge, _build_rotation, _events_of

#: Dependency edges whose unresolved input blocks every po-later store
#: commit (mirrors ``concurrent._BLOCKING_DEPS``; an unresolved store
#: *address* additionally blocks po-later satisfactions).
_BLOCKING_DEPS = frozenset(
    {"DpAddrdR", "DpAddrdW", "DpCtrldR", "DpCtrldW", "DpCtrlIsyncdR"}
)

#: Dependency bases lowered through a conditional branch: the branch
#: must resolve (source read satisfied) before any po-later *fence* may
#: commit (``system._can_commit_barrier`` waits for finished branches).
_BRANCH_DEPS = frozenset({"DpCtrld", "DpCtrlIsyncd"})

_FENCES = ("Syncd", "LwSyncd", "Eieiod")

#: Safety valve for the effective-propagation choice search.  Real
#: cycles (<= 6 threads, <= 5 writes per location arc) stay orders of
#: magnitude below this.
_MAX_ASSIGNMENTS = 50_000


class AxiomaticError(Exception):
    """The cycle cannot be encoded (malformed or search blow-up)."""


# ----------------------------------------------------------------------
# Constraint-system skeleton (assignment-independent cycle structure)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Fence:
    """One fence instance: ``kind`` between thread positions gap/gap+1."""

    fid: int
    tid: int
    gap: int  # between thread-local events [gap] and [gap + 1]
    kind: str  # "sync" | "lwsync" | "eieio"


@dataclass
class _Skeleton:
    """Static structure shared by every choice-assignment of one cycle."""

    events: list  # diy._Event list of the build rotation
    thread_events: Dict[int, List[int]]  # tid -> event indexes in po
    fences: List[_Fence]
    arcs: Dict[int, List[int]]  # location -> event indexes in arc order
    rf: Dict[int, Optional[int]]  # read -> write it reads (None: initial)
    fr: Dict[int, List[int]]  # read -> coherence-later writes (same loc)
    co: List[Tuple[int, int]]  # ALL ordered same-location write pairs
    pre: Dict[int, List[int]]  # fence -> Group-A writes (see _fence_pre)
    post: Dict[int, List[int]]  # fence -> own-thread po-later writes
    co_successors: Dict[int, List[int]]  # write -> coherence-later writes


def _fence_kind(base: str) -> str:
    return {"Syncd": "sync", "LwSyncd": "lwsync", "Eieiod": "eieio"}[base]


def _build_skeleton(edges: Sequence[Edge]) -> _Skeleton:
    """Walk one build-rotated cycle into the solver's static tables."""
    events = _events_of(edges)
    thread_events: Dict[int, List[int]] = {}
    for event in events:
        thread_events.setdefault(event.tid, []).append(event.index)

    # Location arcs: events at one location form a contiguous arc of the
    # cycle linked by external edges; the arc starts where the incoming
    # edge is internal (same walk as diy._assign_values).
    arcs: Dict[int, List[int]] = {}
    for start in events:
        if start.in_edge.external:
            continue
        arc = [start.index]
        cursor = start
        while cursor.out_edge.external:
            cursor = events[(cursor.index + 1) % len(events)]
            arc.append(cursor.index)
        arcs[start.loc] = arc

    rf: Dict[int, Optional[int]] = {}
    fr: Dict[int, List[int]] = {}
    co: List[Tuple[int, int]] = []
    co_successors: Dict[int, List[int]] = {}
    for arc in arcs.values():
        writes = [i for i in arc if events[i].direction == "W"]
        for rank, wid in enumerate(writes):
            co_successors[wid] = writes[rank + 1:]
            for later in writes[rank + 1:]:
                # All pairs, not just adjacent ones: two writes must
                # arrive in coherence order at a common thread even when
                # the writes between them never reach it.
                co.append((wid, later))
        last_write: Optional[int] = None
        for i in arc:
            if events[i].direction == "W":
                last_write = i
            else:
                rf[i] = last_write
                position = arc.index(i)
                fr[i] = [j for j in arc[position:]
                         if events[j].direction == "W"]

    fences: List[_Fence] = []
    pre: Dict[int, List[int]] = {}
    post: Dict[int, List[int]] = {}
    for tid, indexes in thread_events.items():
        for gap in range(len(indexes) - 1):
            edge = events[indexes[gap + 1]].in_edge
            if edge.base not in _FENCES:
                continue
            fence = _Fence(len(fences), tid, gap, _fence_kind(edge.base))
            fences.append(fence)
            before = indexes[: gap + 1]
            after = indexes[gap + 1:]
            # Group A of the fence's storage event: own-thread stores
            # committed before it, plus -- for sync/lwsync, which wait
            # for po-earlier reads -- the writes those reads satisfied
            # from (they reached this thread first: A-cumulativity).
            group_a = [i for i in before if events[i].direction == "W"]
            if fence.kind in ("sync", "lwsync"):
                group_a += [
                    rf[i]
                    for i in before
                    if events[i].direction == "R" and rf.get(i) is not None
                ]
            pre[fence.fid] = group_a
            post[fence.fid] = [i for i in after if events[i].direction == "W"]

    return _Skeleton(
        events=events,
        thread_events=thread_events,
        fences=fences,
        arcs=arcs,
        rf=rf,
        fr=fr,
        co=co,
        pre=pre,
        post=post,
        co_successors=co_successors,
    )


# ----------------------------------------------------------------------
# Per-assignment constraint closure
# ----------------------------------------------------------------------

#: Variable naming: ("S", ev) read satisfaction; ("P", ev, tid) write
#: arrival on a thread (own thread = commit); ("CP", ev) coherence
#: point; ("BC", fid) fence commit; ("BP", fid, tid) fence propagation;
#: ("BA", fid) sync acknowledgement.
Var = Tuple


class _Unresolved(Exception):
    """Closure hit an effective-propagation obligation with no choice yet."""

    def __init__(self, site: Tuple[int, int, int], options: Tuple[int, ...]):
        super().__init__(f"unresolved obligation {site}")
        self.site = site  # (fence id, target thread, Group-A write)
        self.options = options  # candidate carrier writes


@dataclass
class _System:
    """One choice-assignment's variable set and order constraints."""

    skeleton: _Skeleton
    assignment: Dict[Tuple[int, int, int], int]
    present: Set[Var] = field(default_factory=set)
    order: Set[Tuple[Var, Var]] = field(default_factory=set)
    _queue: List[Var] = field(default_factory=list)

    def require(self, var: Var) -> Var:
        if var not in self.present:
            self.present.add(var)
            self._queue.append(var)
        return var

    def precede(self, before: Var, after: Var) -> None:
        self.require(before)
        self.require(after)
        self.order.add((before, after))

    # -- variable helpers ------------------------------------------------

    def _commit(self, ev: int) -> Var:
        return ("P", ev, self.skeleton.events[ev].tid)

    def _local(self, ev: int) -> Var:
        """An event's own-thread time: satisfaction or commit."""
        if self.skeleton.events[ev].direction == "R":
            return ("S", ev)
        return self._commit(ev)

    # -- production rules -----------------------------------------------

    def close(self) -> None:
        """Run every production rule to a fixpoint over ``present``.

        New variables (write/fence propagations) may be forced while
        processing others; the queue drains until nothing new appears.
        Raises ``_Unresolved`` at the first effective-propagation
        obligation the assignment does not cover yet.
        """
        self._seed()
        while self._queue:
            var = self._queue.pop()
            if var[0] == "P":
                self._on_write_arrival(var[1], var[2])
            elif var[0] == "BP":
                self._on_fence_arrival(var[1], var[2])

    def _seed(self) -> None:
        sk = self.skeleton
        for event in sk.events:
            if event.direction == "R":
                self.require(("S", event.index))
            else:
                self.require(self._commit(event.index))
                self.precede(self._commit(event.index), ("CP", event.index))
        for earlier, later in sk.co:
            self.precede(("CP", earlier), ("CP", later))
        for read, source in sk.rf.items():
            if source is not None:
                tid = sk.events[read].tid
                self.precede(("P", source, tid), ("S", read))
        self._seed_thread_local()
        for fence in sk.fences:
            if fence.kind != "sync":
                continue
            ack = ("BA", fence.fid)
            self.precede(("BC", fence.fid), ack)
            for tid in sk.thread_events:
                if tid == fence.tid:
                    continue
                prop = ("BP", fence.fid, tid)
                self.precede(("BC", fence.fid), prop)
                self.precede(prop, ack)

    def _seed_thread_local(self) -> None:
        """Per-thread rules: fences, dependencies, commit blocking."""
        sk = self.skeleton
        for tid, indexes in sk.thread_events.items():
            fences = [f for f in sk.fences if f.tid == tid]
            for fence in fences:
                self._seed_fence(fence, indexes)
            for gap in range(len(indexes) - 1):
                edge = sk.events[indexes[gap + 1]].in_edge
                if edge.dependency:
                    self._seed_dependency(edge, gap, indexes, fences)

    def _seed_fence(self, fence: _Fence, indexes: List[int]) -> None:
        sk = self.skeleton
        commit = ("BC", fence.fid)
        before = indexes[: fence.gap + 1]
        after = indexes[fence.gap + 1:]
        for i in before:
            if sk.events[i].direction == "W":
                # Po-earlier stores land in Group A before the fence
                # commits (every fence kind).
                self.precede(self._commit(i), commit)
            elif fence.kind in ("sync", "lwsync"):
                # sync/lwsync additionally wait for po-earlier reads.
                self.precede(("S", i), commit)
        barrier_out = ("BA", fence.fid) if fence.kind == "sync" else commit
        for i in after:
            if sk.events[i].direction == "W":
                # Po-later stores commit after the fence (sync: after
                # the acknowledgement) -- every fence kind.
                self.precede(barrier_out, self._commit(i))
            elif fence.kind in ("sync", "lwsync"):
                # Po-later reads satisfy after lwsync commit / sync ack;
                # eieio leaves reads entirely alone.
                self.precede(barrier_out, ("S", i))
        # Same-thread fences commit in program order.
        for other in sk.fences:
            if other.tid == fence.tid and other.gap > fence.gap:
                self.precede(commit, ("BC", other.fid))
        # Coherence-point force: Group-A writes reach their coherence
        # points before own-thread po-later writes do (the write-write
        # cumulative force of storage._has_cp_blocker; this is what
        # forbids 2+2W+lwsyncs without propagating anything anywhere).
        for group_a in sk.pre[fence.fid]:
            for group_b in sk.post[fence.fid]:
                self.precede(("CP", group_a), ("CP", group_b))

    def _seed_dependency(
        self,
        edge: Edge,
        gap: int,
        indexes: List[int],
        fences: List[_Fence],
    ) -> None:
        sk = self.skeleton
        source = ("S", indexes[gap])
        target = indexes[gap + 1]
        if edge.base in ("DpAddrd", "DpDatad"):
            self.precede(source, self._local(target))
        elif edge.base == "DpCtrld":
            if edge.tgt == "W":
                self.precede(source, self._commit(target))
        elif edge.base == "DpCtrlIsyncd":
            # The isync refetch orders the read before everything later.
            for later in indexes[gap + 1:]:
                self.precede(source, self._local(later))
        if edge.name in _BLOCKING_DEPS:
            for later in indexes[gap + 1:]:
                if edge.name == "DpAddrdW":
                    # An unresolved store address blocks po-later loads
                    # too (they might have to forward from it).
                    self.precede(source, self._local(later))
                elif sk.events[later].direction == "W":
                    self.precede(source, self._commit(later))
        if edge.base in _BRANCH_DEPS:
            # The branch must resolve before any po-later fence commits.
            for fence in fences:
                if fence.gap > gap:
                    self.precede(source, ("BC", fence.fid))

    # -- demand-driven rules ---------------------------------------------

    def _on_write_arrival(self, ev: int, tid: int) -> None:
        """Rules fired when ``P(ev, tid)`` joins the variable set."""
        sk = self.skeleton
        event = sk.events[ev]
        arrival = ("P", ev, tid)
        if tid != event.tid:
            # A write propagates only after its own-thread commit, and
            # after every po-earlier same-thread fence reached ``tid``
            # (storage.can_propagate_write's barrier-prefix condition).
            self.precede(self._commit(ev), arrival)
            position = sk.thread_events[event.tid].index(ev)
            for fence in sk.fences:
                if fence.tid == event.tid and fence.gap < position:
                    self.precede(("BP", fence.fid, tid), arrival)
        # Coherence: same-location arrivals at one thread follow
        # coherence order (a later write already at ``tid`` makes the
        # earlier one unplaceable there forever).
        for earlier, later in sk.co:
            if ev not in (earlier, later):
                continue
            other = later if ev == earlier else earlier
            other_arrival = ("P", other, tid)
            if other_arrival in self.present:
                if ev == earlier:
                    self.order.add((arrival, other_arrival))
                else:
                    self.order.add((other_arrival, arrival))
        # From-reads: a read on ``tid`` of this location that missed
        # this write must have satisfied first.
        for read, missed in sk.fr.items():
            if ev in missed and sk.events[read].tid == tid:
                self.precede(("S", read), arrival)

    def _on_fence_arrival(self, fid: int, tid: int) -> None:
        """Rules fired when ``BP(fid, tid)`` joins the variable set."""
        sk = self.skeleton
        fence = sk.fences[fid]
        arrival = ("BP", fid, tid)
        self.precede(("BC", fid), arrival)
        # Po-later own-thread writes reach ``tid`` only behind the fence.
        for later in sk.post[fid]:
            later_arrival = ("P", later, tid)
            if later_arrival in self.present:
                self.order.add((arrival, later_arrival))
        # Same-thread earlier fences propagate first.
        for other in sk.fences:
            if other.tid == fence.tid and other.gap < fence.gap:
                self.precede(("BP", other.fid, tid), arrival)
        # Group A must be *effectively* at ``tid`` first: the write
        # itself, or -- the storage model's escape hatch -- any
        # coherence-later write to the same location.
        for group_a in sk.pre[fid]:
            if sk.events[group_a].tid == tid:
                self.precede(self._commit(group_a), arrival)
                continue
            options = (group_a,) + tuple(sk.co_successors.get(group_a, ()))
            if len(options) == 1:
                carrier = group_a
            else:
                site = (fid, tid, group_a)
                carrier = self.assignment.get(site)
                if carrier is None:
                    raise _Unresolved(site, options)
            self.precede(("P", carrier, tid), arrival)

    # -- satisfiability ---------------------------------------------------

    def order_cycle(self) -> Optional[List[Var]]:
        """A cycle of the order relation, or None if it is acyclic."""
        successors: Dict[Var, List[Var]] = {}
        for before, after in self.order:
            successors.setdefault(before, []).append(after)
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[Var, int] = {}
        for root in self.present:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Var, int]] = [(root, 0)]
            path: List[Var] = []
            color[root] = GREY
            path.append(root)
            while stack:
                node, child = stack[-1]
                kids = successors.get(node, ())
                if child < len(kids):
                    stack[-1] = (node, child + 1)
                    nxt = kids[child]
                    state = color.get(nxt, WHITE)
                    if state == GREY:
                        return path[path.index(nxt):] + [nxt]
                    if state == WHITE:
                        color[nxt] = GREY
                        stack.append((nxt, 0))
                        path.append(nxt)
                else:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()
        return None


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AxiomaticVerdict:
    """The solver's decision for one cycle, with its evidence."""

    status: str  # "Allowed" | "Forbidden"
    #: Forbidden: one unsatisfiable constraint cycle (human-readable
    #: variable names, first repeated at the end) from the last
    #: assignment tried.  Allowed: None.
    contradiction: Optional[Tuple[str, ...]]
    assignments_tried: int

    @property
    def forbidden(self) -> bool:
        return self.status == "Forbidden"


def _describe(skeleton: _Skeleton, var: Var) -> str:
    def ev(i: int) -> str:
        event = skeleton.events[i]
        return f"{event.direction}{event.loc}@T{event.tid}"

    kind = var[0]
    if kind == "S":
        return f"satisfy {ev(var[1])}"
    if kind == "P":
        event = skeleton.events[var[1]]
        if event.tid == var[2]:
            return f"commit {ev(var[1])}"
        return f"prop {ev(var[1])}->T{var[2]}"
    if kind == "CP":
        return f"cp {ev(var[1])}"
    fence = skeleton.fences[var[1]]
    label = f"{fence.kind}@T{fence.tid}"
    if kind == "BC":
        return f"commit {label}"
    if kind == "BA":
        return f"ack {label}"
    return f"prop {label}->T{var[2]}"


def decide(edges: Sequence[Edge]) -> AxiomaticVerdict:
    """Decide one cycle: Allowed iff some choice closure is acyclic.

    The cycle is rotated to the canonical build rotation first, so the
    verdict is independent of how the cycle was entered.  The search
    branches only over effective-propagation carrier choices; everything
    else is a deterministic closure.
    """
    rotation = _build_rotation(tuple(edges))
    skeleton = _build_skeleton(rotation)

    tried = 0
    last_cycle: Optional[List[Var]] = None

    def attempt(assignment: Dict[Tuple[int, int, int], int]) -> bool:
        nonlocal tried, last_cycle
        tried += 1
        if tried > _MAX_ASSIGNMENTS:
            raise AxiomaticError(
                f"choice search exceeded {_MAX_ASSIGNMENTS} assignments "
                f"for {[e.name for e in rotation]}"
            )
        system = _System(skeleton=skeleton, assignment=assignment)
        try:
            system.close()
        except _Unresolved as obligation:
            for option in obligation.options:
                branched = dict(assignment)
                branched[obligation.site] = option
                if attempt(branched):
                    return True
            return False
        cycle = system.order_cycle()
        if cycle is None:
            return True
        last_cycle = cycle
        return False

    if attempt({}):
        return AxiomaticVerdict(
            status="Allowed", contradiction=None, assignments_tried=tried
        )
    names = tuple(_describe(skeleton, var) for var in (last_cycle or []))
    return AxiomaticVerdict(
        status="Forbidden", contradiction=names, assignments_tried=tried
    )
