"""Tests for the axiomatic commit/propagation-order solver.

Three layers of evidence that ``testgen.axiomatic.decide`` is the right
fallback oracle:

* *pinned verdicts* for the families the closure oracle could not
  assert (the R+lwsync+sync / R+eieio+sync "weak" class and the
  cumulativity-sensitive WRC/ISA2 shapes), matching the architected
  statuses;
* *agreement properties*: the solver reproduces all 31 curated
  architected statuses on its own, and agrees with the closure verdict
  on every shape of the seed-0 size-200 suite the closure decides
  (including every 2-thread shape);
* *model spot-checks*: previously-unasserted shapes run through the
  exhaustive explorer must land on the solver's verdict (the full-suite
  sweep is the slow tier in ``test_litmus_gen.py``).
"""

import pytest

from repro.isa.model import default_model
from repro.litmus import diy
from repro.litmus.library import by_name
from repro.litmus.runner import run_litmus
from repro.testgen.axiomatic import AxiomaticVerdict, decide
from repro.testgen.concurrent import (
    closure_expectation,
    expectation,
    expectation_with_oracle,
)

MODEL = default_model()


# ----------------------------------------------------------------------
# Pinned verdicts for the previously-unasserted families
# ----------------------------------------------------------------------

#: (name, cycle, architected verdict).  The first block is the
#: write-started lwsync/eieio-into-Wse class ("weak" in the closure);
#: the second is the 3+-thread cumulativity class.
PINNED = [
    ("R+lwsync+sync", ["LwSyncdWW", "Wse", "SyncdWR", "Fre"], "Allowed"),
    ("R+eieio+sync", ["EieiodWW", "Wse", "SyncdWR", "Fre"], "Allowed"),
    ("2+2W+lwsyncs", ["LwSyncdWW", "Wse", "LwSyncdWW", "Wse"], "Forbidden"),
    ("2+2W+eieios", ["EieiodWW", "Wse", "EieiodWW", "Wse"], "Forbidden"),
    ("S+lwsyncs", ["LwSyncdWW", "Rfe", "LwSyncdRW", "Wse"], "Forbidden"),
    ("WRC+addrs", diy.CURATED_CYCLES["WRC+addrs"], "Allowed"),
    ("WRC+sync+addr", diy.CURATED_CYCLES["WRC+sync+addr"], "Forbidden"),
    ("WRC+lwsync+addr", diy.CURATED_CYCLES["WRC+lwsync+addr"], "Forbidden"),
    (
        "ISA2+sync+data+addr",
        diy.CURATED_CYCLES["ISA2+sync+data+addr"],
        "Forbidden",
    ),
    ("IRIW+addrs", diy.CURATED_CYCLES["IRIW+addrs"], "Allowed"),
    ("IRIW+syncs", diy.CURATED_CYCLES["IRIW+syncs"], "Forbidden"),
]


@pytest.mark.parametrize("name,names,verdict", PINNED, ids=[p[0] for p in PINNED])
def test_pinned_verdicts(name, names, verdict):
    result = decide(diy.edges_from_names(names))
    assert isinstance(result, AxiomaticVerdict)
    assert result.status == verdict, (
        f"{name}: solver says {result.status}, architected {verdict}"
    )
    if verdict == "Forbidden":
        # The contradiction names the architectural reason.
        assert result.contradiction, name
        assert result.contradiction[0] == result.contradiction[-1]
    else:
        assert result.contradiction is None


def test_rotation_invariant_verdicts():
    for names in (PINNED[0][1], PINNED[2][1], PINNED[7][1]):
        edges = diy.edges_from_names(names)
        baseline = decide(edges).status
        for i in range(len(edges)):
            rotated = edges[i:] + edges[:i]
            assert decide(rotated).status == baseline


# ----------------------------------------------------------------------
# Agreement properties
# ----------------------------------------------------------------------


def test_reproduces_every_curated_architected_status():
    """The solver alone decides all 31 curated cycles correctly."""
    for name, names in diy.CURATED_CYCLES.items():
        architected = by_name(name).architected
        verdict = decide(diy.edges_from_names(names))
        assert verdict.status == architected, (
            f"{name}: solver={verdict.status} architected={architected}"
        )


def test_agrees_with_closure_on_seed0_suite():
    """Property: on seed-0 size-200, solver == closure wherever the
    closure decides -- in particular on every 2-thread shape."""
    suite = diy.generate(0, 200)
    two_thread_decided = 0
    for test in suite:
        closure = closure_expectation(test.edges)
        if closure is None:
            continue
        verdict = decide(test.edges)
        assert verdict.status == closure, (
            f"{test.name} {test.edge_names}: "
            f"solver={verdict.status} closure={closure}"
        )
        if test.thread_count == 2:
            two_thread_decided += 1
    assert two_thread_decided >= 50  # the property is not vacuous


def test_closes_every_unasserted_shape():
    """``expectation`` no longer returns None on any generated shape."""
    suite = diy.generate(0, 200)
    closure_open = [
        test for test in suite if closure_expectation(test.edges) is None
    ]
    assert closure_open  # the closure really does abstain somewhere
    for test in closure_open:
        verdict, oracle = expectation_with_oracle(test.edges)
        assert verdict in ("Allowed", "Forbidden")
        assert oracle == "axiomatic"


def test_expectation_fallback_and_opt_out():
    edges = diy.edges_from_names(["LwSyncdWW", "Wse", "SyncdWR", "Fre"])
    assert closure_expectation(edges) is None
    assert expectation(edges, axiomatic=False) is None
    assert expectation(edges) == "Allowed"
    decided = diy.edges_from_names(diy.CURATED_CYCLES["MP+syncs"])
    assert expectation_with_oracle(decided) == ("Forbidden", "closure")


def test_lifted_caps_are_decidable():
    """Every shape of a lifted-cap suite gets a definite verdict."""
    suite = diy.generate(3, 40, max_threads=6, max_run=4)
    for test in suite:
        assert expectation(test.edges) in ("Allowed", "Forbidden")


# ----------------------------------------------------------------------
# Model spot-checks on previously-unasserted shapes
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "names",
    [
        ["LwSyncdWW", "Wse", "SyncdWR", "Fre"],  # R+lwsync+sync
        ["EieiodWW", "Wse", "SyncdWR", "Fre"],  # R+eieio+sync
        ["LwSyncdWW", "Wse", "LwSyncdWR", "Fre"],  # R+lwsyncs
    ],
    ids=["R+lwsync+sync", "R+eieio+sync", "R+lwsyncs"],
)
def test_model_agrees_on_weak_class(names):
    edges = diy.edges_from_names(names)
    generated = diy.make_test(edges, name="weak-class-probe")
    result = run_litmus(generated.test, MODEL)
    assert result.status == decide(edges).status
