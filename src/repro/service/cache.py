"""Persistent verdict cache for the envelope service.

Exploration of a single POWER litmus shape is provably expensive
(robustness against Power is PSPACE-complete), which makes the query
path an ideal memoisation target: a verdict, once computed, is a pure
function of the test and the exploration parameters.  This module is
that memo.

Cache key
---------

``cache_key`` hashes a *canonical* description of the query:

* the canonical litmus source -- ``litmus/emit.emit_litmus`` output,
  which is a fixed point of parse-then-emit, so formatting differences
  (whitespace, instruction-column alignment, condition parenthesisation)
  never split cache entries;
* the full parameter tuple: search-strategy name, reduction, context
  bound, state budget, Sail execution backend, and the model-parameter
  fingerprint (``ModelParams``);
* ``SCHEMA_VERSION`` -- bumped whenever exploration *semantics* change
  (new transitions, changed reduction soundness argument, verdict
  vocabulary), which invalidates every stale entry at once.

The digest is SHA-256 over a sorted-key JSON encoding, so it is
byte-identical across processes, machines and ``PYTHONHASHSEED``
values (pinned by ``tests/test_service.py``).

Store
-----

``VerdictCache`` is an sqlite3-backed key -> verdict-JSON table, safe
for concurrent use from daemon handler threads (one connection behind a
lock; sqlite serialises writers anyway).  ``path=":memory:"`` gives an
ephemeral cache for tests and benchmarks.  Hit/miss counters are
in-memory per-process statistics, not persisted.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..concurrency.params import DEFAULT_PARAMS, ModelParams

#: Bump when exploration semantics change (see SERVICE.md for the rules).
#: 2: ``reduction="dpor"`` and the ``symmetry`` key field landed, and the
#: unique-state accounting changed meaning under dpor (canonical keys).
SCHEMA_VERSION = 2


def cache_key(
    canonical_source: str,
    strategy: str = "sequential",
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
    max_states: Optional[int] = None,
    sail_backend: str = "compiled",
    params: ModelParams = DEFAULT_PARAMS,
) -> str:
    """The content hash identifying one (test, parameters) query."""
    payload = {
        "schema": SCHEMA_VERSION,
        "test": canonical_source,
        "strategy": strategy,
        "reduction": reduction,
        "context_bound": context_bound,
        "symmetry": symmetry,
        "max_states": max_states,
        "sail_backend": sail_backend,
        "params": asdict(params),
    }
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


class VerdictCache:
    """Persistent key -> verdict store with hit/miss accounting."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS verdicts ("
            "  key TEXT PRIMARY KEY,"
            "  schema INTEGER NOT NULL,"
            "  name TEXT,"
            "  payload TEXT NOT NULL,"
            "  created REAL NOT NULL"
            ")"
        )
        self._connection.commit()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored verdict payload for ``key``, or ``None`` on a miss.

        Entries written under a different ``SCHEMA_VERSION`` are treated
        as misses (belt and braces: the version is also hashed into the
        key, so they should never collide in the first place).
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT schema, payload FROM verdicts WHERE key = ?", (key,)
            ).fetchone()
        if row is None or row[0] != SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row[1])

    def put(self, key: str, name: str, payload: Dict[str, Any]) -> None:
        """Store (or overwrite) the verdict payload for ``key``."""
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO verdicts "
                "(key, schema, name, payload, created) VALUES (?, ?, ?, ?, ?)",
                (key, SCHEMA_VERSION, name, encoded, time.time()),
            )
            self._connection.commit()

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM verdicts"
            ).fetchone()
        return count

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM verdicts WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "schema": SCHEMA_VERSION,
        }

    def close(self) -> None:
        with self._lock:
            self._connection.close()
