"""Parallel litmus-corpus exploration.

State graphs of distinct litmus tests are independent, so the natural unit
of parallelism is one test: the corpus is sharded per test across
``multiprocessing`` workers, each of which builds (or, with the ``fork``
start method, inherits) the process-wide ISA model and runs the exhaustive
oracle through a pluggable ``SearchStrategy``.  Results come back as slim,
picklable ``CorpusTestResult`` records whose ``ExplorationStats`` are
merged into corpus-level totals.

``explore_corpus`` takes ``(name, source)`` pairs so workers re-parse the
litmus source themselves -- litmus files are tiny, and shipping text keeps
the worker protocol independent of every internal class being picklable.
(Strategies themselves are frozen dataclasses, picklable by value.)

Corpus-level and intra-test parallelism compose under ONE worker budget
(``jobs``): per-test sharding soaks up the budget first (at most one
worker per test), and any leftover is redistributed as intra-test
frontier workers per corpus worker -- 2 tests under ``--jobs 8`` run as
two corpus workers sharding four ways each, and a single test (the
IRIW+syncs-class case where one graph dwarfs the corpus) gets the whole
budget as ``ShardedParallel`` frontier workers.  ``plan_worker_budget``
is that policy.  When the plan includes intra sharding, the corpus pool
is a non-daemonic ``ProcessPoolExecutor`` (plain ``multiprocessing.Pool``
workers are daemonic and may not fork shard children); inside any worker
that still cannot fork, ``ShardedParallel`` degrades to sequential
search.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from .params import DEFAULT_PARAMS, ModelParams
from .search import SearchStrategy, ShardedParallel, resolve_strategy
from .search.core import ExplorationLimit, ExplorationStats

#: One unit of work: (name, litmus source, params, max_states, strategy).
Task = Tuple[str, str, ModelParams, Optional[int], SearchStrategy]


@dataclass
class CorpusTestResult:
    """Slim, picklable summary of one test's exhaustive run."""

    name: str
    status: str  # litmus verdict ("Allowed", ...) or "StateLimit" on budget
    witnessed: bool
    holds_always: bool
    outcomes: Set[Tuple]  # the full outcome set (register/memory tuples)
    stats: ExplorationStats
    error: Optional[str] = None  # set when the state budget was exhausted
    complete: bool = True  # False: ``outcomes`` is a partial set

    @property
    def outcome_count(self) -> int:
        return len(self.outcomes)


@dataclass
class CorpusReport:
    """All per-test results of a corpus run plus scheduling metadata."""

    results: List[CorpusTestResult]
    jobs: int
    wall_seconds: float

    def merged_stats(self) -> ExplorationStats:
        """Corpus totals: sums of counters, max frontier, summed CPU time."""
        merged = ExplorationStats()
        for result in self.results:
            merged.merge(result.stats)
        return merged

    def by_name(self, name: str) -> CorpusTestResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


def default_job_count() -> int:
    """Usable CPUs: the scheduling affinity mask where the OS exposes it.

    ``os.cpu_count()`` reports the machine's cores even when the process
    is pinned to fewer (cgroup-limited containers, taskset), which
    over-subscribes the pool; prefer the affinity mask.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def plan_worker_budget(budget: int, test_count: int) -> Tuple[int, int]:
    """Split one worker budget into (corpus jobs, intra-test jobs).

    Per-test sharding is near-embarrassingly parallel, so corpus jobs
    soak up the budget first (one worker per test, at most).  Whatever
    is left over is handed back as intra-test frontier workers *per
    corpus worker*: with 2 tests and ``--jobs 8`` the plan is
    ``(2, 4)`` -- two corpus workers, each sharding its test's frontier
    four ways -- where it used to be ``(2, 1)`` with six workers
    stranded.  A single test degenerates to ``(1, budget)``.

    The plan is the *budget*, not a promise: intra-test sharding above
    one job additionally needs workers that may fork children, so
    ``explore_corpus`` runs multi-worker corpora through a non-daemonic
    executor when the plan calls for intra sharding, and
    ``ShardedParallel`` itself degrades to sequential search inside any
    worker that cannot fork (daemonic pools, no ``fork`` method).

    Boundary shapes: a budget *smaller* than the test count gives every
    worker exactly one intra job (``(budget, 1)`` -- never 0, never more
    workers than budget), and an empty corpus plans ``(1, 1)`` instead
    of handing the whole budget to work that does not exist.  The
    invariant is ``corpus_jobs * intra_jobs <= max(budget, 1)`` with
    both components >= 1.
    """
    if budget < 1:
        raise ValueError(f"jobs must be >= 1, got {budget}")
    if test_count <= 0:
        return 1, 1
    corpus_jobs = min(budget, test_count)
    intra_jobs = max(1, budget // corpus_jobs)
    return corpus_jobs, intra_jobs


def _init_worker() -> None:
    """Warm the process-wide ISA model once per worker."""
    from ..isa.model import default_model

    default_model()


# ----------------------------------------------------------------------
# Graceful worker shutdown
# ----------------------------------------------------------------------
#
# A corpus run interrupted mid-``pool.map`` (KeyboardInterrupt at the
# CLI, SIGTERM against the serve daemon) used to leak its children: the
# parent unwound, the workers kept exploring.  Every live pool now
# registers an abort handle; ``explore_corpus`` aborts its own pool on
# the way out of an interrupt, and ``shutdown_active_pools`` lets a
# signal handler (the daemon's SIGTERM path) terminate-and-join whatever
# is running from outside the exploring thread.

_ACTIVE_POOLS: Set["_PoolHandle"] = set()
_ACTIVE_POOLS_LOCK = threading.Lock()


class _PoolHandle:
    """Terminate-and-join control over one worker pool.

    Wraps either a ``multiprocessing.Pool`` or a
    ``concurrent.futures.ProcessPoolExecutor`` (whose API has no
    ``terminate``; its children are killed directly).
    """

    def __init__(self, pool=None, executor=None):
        self._pool = pool
        self._executor = executor

    def abort(self) -> None:
        """Terminate every child process and reap it."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        if self._executor is not None:
            processes = list(
                getattr(self._executor, "_processes", {}).values()
            )
            for process in processes:
                if process.is_alive():
                    process.terminate()
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except TypeError:  # pragma: no cover - Python < 3.9
                self._executor.shutdown(wait=False)
            for process in processes:
                process.join(timeout=5)


def _register_pool(handle: "_PoolHandle") -> "_PoolHandle":
    with _ACTIVE_POOLS_LOCK:
        _ACTIVE_POOLS.add(handle)
    return handle


def _unregister_pool(handle: "_PoolHandle") -> None:
    with _ACTIVE_POOLS_LOCK:
        _ACTIVE_POOLS.discard(handle)


def shutdown_active_pools() -> int:
    """Terminate-and-join every live corpus pool; returns how many.

    Installed behind the serve daemon's SIGTERM handler and usable from
    any cleanup path that must not strand worker children.
    """
    with _ACTIVE_POOLS_LOCK:
        handles = list(_ACTIVE_POOLS)
        _ACTIVE_POOLS.clear()
    for handle in handles:
        handle.abort()
    return len(handles)


def _run_task(task: Task) -> CorpusTestResult:
    """Worker body: parse and exhaustively run one litmus test."""
    # Imported lazily: this module lives below repro.litmus in the package
    # graph, and the imports also must happen inside spawned workers.
    from ..isa.model import default_model
    from ..litmus.parser import parse_litmus
    from ..litmus.runner import run_litmus

    name, source, params, max_states, strategy = task
    test = parse_litmus(source)
    try:
        result = run_litmus(
            test,
            default_model(),
            params=params,
            max_states=max_states,
            strategy=strategy,
        )
    except ExplorationLimit as limit:
        # A budget-exhausted test is a reportable per-test outcome, not a
        # corpus-wide crash (e.g. IRIW+syncs exceeds the Python budget).
        # The work done up to exhaustion still counts toward the totals.
        return CorpusTestResult(
            name=name if name else test.name,
            status="StateLimit",
            witnessed=False,
            holds_always=False,
            outcomes=set(),
            stats=limit.stats if limit.stats is not None else ExplorationStats(),
            error=str(limit),
            complete=False,
        )
    complete = result.exploration.complete
    return CorpusTestResult(
        name=name if name else test.name,
        status=result.status,
        witnessed=result.witnessed,
        holds_always=result.holds_always,
        outcomes=result.outcomes,
        stats=result.exploration.stats,
        error=None if complete else "state budget exhausted (partial outcomes)",
        complete=complete,
    )


def explore_corpus(
    items: Sequence[Tuple[str, str]],
    jobs: Optional[int] = None,
    params: ModelParams = DEFAULT_PARAMS,
    max_states: Optional[int] = None,
    strategy=None,
) -> CorpusReport:
    """Exhaustively run a corpus of litmus tests, sharded across workers.

    ``items`` is a sequence of (name, litmus source) pairs; ``jobs`` is
    the total worker budget (default: usable CPU count), split between
    per-test sharding and intra-test frontier workers by
    ``plan_worker_budget``.  ``strategy`` picks the per-test search
    backend (name or ``SearchStrategy``; default sequential DFS).
    ``jobs=1`` (or a single test) runs inline in this process -- same
    results, no pool overhead.
    """
    budget = jobs if jobs is not None else default_job_count()
    tasks_source = list(items)
    corpus_jobs, intra_jobs = plan_worker_budget(budget, len(tasks_source))
    strategy = resolve_strategy(strategy)
    needs_forking_workers = False
    if isinstance(strategy, ShardedParallel):
        if corpus_jobs == 1:
            if strategy.jobs is None:
                strategy = dataclasses.replace(strategy, jobs=intra_jobs)
        elif intra_jobs > 1 and ShardedParallel.can_fork():
            # Leftover budget becomes per-test frontier workers; the
            # corpus pool must then be non-daemonic so each worker may
            # fork its shard children.
            strategy = dataclasses.replace(strategy, jobs=intra_jobs)
            needs_forking_workers = True
        else:
            # No leftover budget (or no fork): intra search runs
            # sequentially inside the corpus workers.
            strategy = dataclasses.replace(strategy, jobs=1)
    tasks: List[Task] = [
        (name, source, params, max_states, strategy)
        for name, source in tasks_source
    ]
    started = time.perf_counter()
    if corpus_jobs == 1:
        results = [_run_task(task) for task in tasks]
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(method)
        if method == "fork":
            # Parse the ISA model once here; forked workers inherit it.
            _init_worker()
        # Per-test granularity (chunksize=1): state-graph sizes vary by
        # orders of magnitude, so fine-grained scheduling load-balances.
        if needs_forking_workers:
            # ``multiprocessing.Pool`` workers are daemonic and may not
            # fork; ``ProcessPoolExecutor`` workers are not, so they can
            # run the intra-test shard fan-out planned above.
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(
                max_workers=corpus_jobs,
                mp_context=context,
                initializer=_init_worker,
            )
            handle = _register_pool(_PoolHandle(executor=executor))
            try:
                results = list(executor.map(_run_task, tasks, chunksize=1))
                executor.shutdown()
            except BaseException:
                # KeyboardInterrupt/SIGTERM unwinding must not strand
                # the children mid-exploration.
                handle.abort()
                raise
            finally:
                _unregister_pool(handle)
        else:
            pool = context.Pool(
                processes=corpus_jobs, initializer=_init_worker
            )
            handle = _register_pool(_PoolHandle(pool=pool))
            try:
                results = pool.map(_run_task, tasks, chunksize=1)
                pool.close()
                pool.join()
            except BaseException:
                handle.abort()
                raise
            finally:
                _unregister_pool(handle)
    wall = time.perf_counter() - started
    return CorpusReport(results=results, jobs=corpus_jobs, wall_seconds=wall)
