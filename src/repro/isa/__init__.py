"""The POWER ISA model: encodings, Sail pseudocode, codecs, execution."""

from .model import DecodedInstruction, DecodeError, IsaModel, default_model
from .registers import Registry, power_registry
from .spec import DecodeTable, EncodingError, InstructionSpec
from .assembler import Assembler, AssemblerError
from .disasm import disassemble
from .sequential import SequentialMachine, SequentialError

__all__ = [
    "Assembler",
    "AssemblerError",
    "DecodeError",
    "DecodeTable",
    "DecodedInstruction",
    "EncodingError",
    "InstructionSpec",
    "IsaModel",
    "Registry",
    "SequentialError",
    "SequentialMachine",
    "default_model",
    "disassemble",
    "power_registry",
]
